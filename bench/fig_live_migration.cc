// Live vs quiesced relayout under traffic (the src/migrate subsystem,
// paper Section 4.1's production loop). Three modes over the same
// hash-start contended ycsb (`adaptive`) scenario:
//
//   quiesced   — sample -> replan -> Phase::Migrate(): the legacy
//                stop-the-world relayout. Its timeline shows a
//                zero-commit window exactly as long as the migration.
//   live       — sample -> replan -> Phase::LiveMigrate(): the same plan
//                executed one relayout bucket at a time while traffic
//                flows; transactions hitting the in-flight bucket retry
//                with the dedicated migration abort class. The timeline
//                stays above zero through the whole relayout.
//   continuous — no phase plan at all: the measure window runs under
//                migrate::AdaptiveController (periodic sample -> replan ->
//                live-migrate epochs with drift gating + hysteresis).
//
// Both phased modes sample identically, so they replan identical layouts
// and move identical record sets: the comparison isolates *how* the move
// is paid for. Each row carries the full commit-flow timeline
// (timeline_slice-sized buckets of lifetime commits + latency) so the
// relayout window is visible, not just summarized.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

constexpr SimTime kTimelineSlice = 250 * kMicrosecond;

void Main(const BenchFlags& flags) {
  std::printf(
      "Live migration — ycsb (theta=%.2f) on %u nodes x %u engines,\n"
      "%s protocol; quiesced vs per-bucket live relayout vs the\n"
      "continuous adaptivity controller.\n\n",
      flags.theta, flags.nodes, flags.engines, flags.protocol.c_str());

  BenchReport report("migration");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("protocol", flags.protocol);
  report.SetConfig("theta", flags.theta);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("timeline_slice_us",
                   static_cast<uint64_t>(kTimelineSlice / kMicrosecond));

  const SimTime warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
  const SimTime measure =
      static_cast<SimTime>(flags.duration_ms * kMillisecond);
  // Same shape as fig_adaptive_relayout: a long sample window so the
  // replan sees the contended head, then a resettle before measuring.
  const SimTime sample = 2 * warmup + measure;
  const SimTime resettle = warmup;

  auto base_spec = [&] {
    runner::ScenarioSpec spec;
    spec.workload = "adaptive";
    spec.protocol = flags.protocol;
    spec.nodes = flags.nodes;
    spec.engines_per_node = flags.engines;
    spec.concurrency = flags.concurrency;
    spec.seed = flags.seed;
    ApplyLoadModelFlags(flags, &spec);
    spec.options.Set("theta", flags.theta);
    spec.options.Set("keys_per_partition", 10000);
    spec.timeline_slice = kTimelineSlice;
    return spec;
  };

  runner::ScenarioSpec quiesced = base_spec();
  quiesced.label = "quiesced";
  quiesced.phases = {
      runner::Phase::Warmup(warmup),
      runner::Phase::Sample(sample, /*rate=*/1.0),
      runner::Phase::Replan(),
      runner::Phase::Migrate(),
      runner::Phase::Warmup(resettle),
      runner::Phase::Measure(measure),
  };

  runner::ScenarioSpec live = base_spec();
  live.label = "live";
  live.phases = {
      runner::Phase::Warmup(warmup),
      runner::Phase::Sample(sample, /*rate=*/1.0),
      runner::Phase::Replan(),
      runner::Phase::LiveMigrate(),
      runner::Phase::Warmup(resettle),
      runner::Phase::Measure(measure),
  };

  runner::ScenarioSpec continuous = base_spec();
  continuous.label = "continuous";
  continuous.continuous = true;
  continuous.warmup = warmup;
  // Same total simulated time as the phased modes (their relayout costs
  // land inside this window instead of before it).
  continuous.measure = sample + resettle + measure;
  continuous.controller_period = std::max<SimTime>(kMillisecond, warmup);

  std::vector<runner::ScenarioSpec> specs = {quiesced, live, continuous};
  for (auto& spec : specs) {
    spec.footprint_hint = runner::EstimateFootprint(spec);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "migration");
  size_t completed = 0;
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr, "  [migration] %s %s (%zu/%zu)\n",
                     specs[i].label.c_str(),
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  for (const auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "migration: scenario failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
  }

  auto window_tps = [](const runner::AdaptiveReport& a) {
    const SimTime span = a.migration_end - a.migration_start;
    if (span == 0) return 0.0;
    return static_cast<double>(a.migration_window_commits) /
           (static_cast<double>(span) / kSecond);
  };

  for (const auto& res : results) {
    const runner::ScenarioResult& r = res.value();
    const runner::AdaptiveReport& a = r.adaptive;
    Json params = Json::MakeObject();
    params["mode"] = r.spec.label;
    Json row = ResultRow(flags.protocol, std::move(params), r.stats);
    row["sampled_txns"] = a.sampled_txns;
    row["hot_records"] = static_cast<uint64_t>(a.hot_records);
    row["lookup_entries"] = static_cast<uint64_t>(a.lookup_entries);
    row["moved_records"] = a.migration.moved_records;
    row["moved_bytes"] = a.migration.moved_bytes;
    row["migration_us"] =
        static_cast<double>(a.migration.sim_time) / 1000.0;
    row["buckets_moved"] = static_cast<uint64_t>(a.buckets_moved);
    row["migration_window_start_us"] =
        static_cast<double>(a.migration_start) / 1000.0;
    row["migration_window_end_us"] =
        static_cast<double>(a.migration_end) / 1000.0;
    row["migration_window_commits"] = a.migration_window_commits;
    row["migration_window_aborts"] = a.migration_window_aborts;
    row["migration_window_tps"] = window_tps(a);
    if (r.spec.continuous) {
      row["controller_epochs"] = static_cast<uint64_t>(a.controller_epochs);
      row["controller_migrations"] =
          static_cast<uint64_t>(a.controller_migrations);
      row["controller_settled"] = a.controller_settled;
    }
    Json timeline = Json::MakeArray();
    for (const runner::TimelineSlice& s : a.timeline) {
      Json slice = Json::MakeObject();
      slice["start_us"] = static_cast<double>(s.start) / 1000.0;
      slice["end_us"] = static_cast<double>(s.end) / 1000.0;
      slice["commits"] = s.commits;
      slice["tps"] = s.end == s.start
                         ? 0.0
                         : static_cast<double>(s.commits) /
                               (static_cast<double>(s.end - s.start) /
                                kSecond);
      slice["latency_mean_ns"] =
          s.commits == 0 ? 0.0
                         : static_cast<double>(s.latency_ns_sum) /
                               static_cast<double>(s.commits);
      timeline.Append(std::move(slice));
    }
    row["timeline"] = std::move(timeline);
    report.Add(std::move(row));
  }

  const runner::ScenarioResult& q = results[0].value();
  const runner::ScenarioResult& l = results[1].value();
  const runner::ScenarioResult& c = results[2].value();
  std::printf("%-12s %14s %16s %14s %12s %12s\n", "mode",
              "final Mtps", "window Mtps", "moved recs", "migr us",
              "migr aborts");
  auto print_mode = [&](const runner::ScenarioResult& r) {
    std::printf("%-12s %14.3f %16.3f %14llu %12.1f %12llu\n",
                r.spec.label.c_str(), r.stats.Throughput() / 1e6,
                window_tps(r.adaptive) / 1e6,
                static_cast<unsigned long long>(
                    r.adaptive.migration.moved_records),
                static_cast<double>(r.adaptive.migration.sim_time) / 1000.0,
                static_cast<unsigned long long>(
                    r.adaptive.migration_window_aborts));
  };
  print_mode(q);
  print_mode(l);
  print_mode(c);
  std::printf(
      "\ncontinuous: %u epochs, %u relayouts, %s\n",
      c.adaptive.controller_epochs, c.adaptive.controller_migrations,
      c.adaptive.controller_settled ? "settled" : "still adapting");

  std::printf("\nsweep: %zu scenarios in %.1f s wall-clock (--jobs %u, --shards %u)\n",
              specs.size(), sweep_ms / 1000.0, executor.jobs(),
              flags.shards);

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("migration"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.9;   // contended: the regime relayout targets
  defaults.nodes = 4;     // 16 partitions: plenty of cross-partition moves
  defaults.engines = 4;
  defaults.warmup_ms = 2.0;
  defaults.duration_ms = 10.0;
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "migration", defaults));
}
