// Figure 8: ratio of distributed transactions produced by each partitioning
// scheme, vs. number of partitions, on the Instacart-like workload.
//
// Paper expectation: Schism lowest (it optimizes exactly this metric);
// Chiller noticeably higher (~+60% at 2 partitions, gap narrowing with
// more partitions); hashing highest. Chiller wins Figure 7 anyway — the
// point of the paper: distributed-transaction count is the wrong objective
// on fast networks.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

void Main() {
  std::printf(
      "Figure 8 — ratio of distributed transactions vs partitions\n"
      "paper shape: Schism < Chiller < Hashing; gap narrows with more\n"
      "partitions.\n\n");

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;

  std::vector<double> ks = {2, 3, 4, 5, 6, 7, 8};
  std::vector<double> hash_s, schism_s, chiller_s, resid_chiller, resid_hash,
      resid_schism;
  for (double kd : ks) {
    const uint32_t k = static_cast<uint32_t>(kd);
    instacart::InstacartWorkload wl(wopts);
    auto layouts = BuildInstacartLayouts(&wl, k, /*trace_txns=*/8000);
    // Evaluate on a fresh sample from the same distribution (test set).
    Rng rng(1000 + k);
    auto eval = wl.GenerateTrace(8000, &rng);
    hash_s.push_back(partition::DistributedRatio(eval, *layouts.hashing));
    schism_s.push_back(partition::DistributedRatio(eval, *layouts.schism));
    chiller_s.push_back(
        partition::DistributedRatio(eval, *layouts.chiller_out.partitioner));
    partition::StatsCollector stats;
    for (const auto& t : eval) stats.ObserveTrace(t);
    resid_hash.push_back(
        partition::ResidualContention(eval, *layouts.hashing, stats, 16.0));
    resid_schism.push_back(
        partition::ResidualContention(eval, *layouts.schism, stats, 16.0));
    resid_chiller.push_back(partition::ResidualContention(
        eval, *layouts.chiller_out.partitioner, stats, 16.0));
  }

  PrintHeader("partitions", ks);
  PrintRow("Hashing", hash_s, "%8.3f");
  PrintRow("Schism", schism_s, "%8.3f");
  PrintRow("Chiller", chiller_s, "%8.3f");

  std::printf("\nResidual contention (the objective Chiller optimizes; "
              "lower is better):\n");
  PrintHeader("partitions", ks);
  PrintRow("Hashing", resid_hash, "%8.1f");
  PrintRow("Schism", resid_schism, "%8.1f");
  PrintRow("Chiller", resid_chiller, "%8.1f");
}

}  // namespace
}  // namespace chiller::bench

int main() { chiller::bench::Main(); }
