// Figure 8: ratio of distributed transactions produced by each partitioning
// scheme, vs. number of partitions, on the Instacart-like workload.
//
// Paper expectation: Schism lowest (it optimizes exactly this metric);
// Chiller noticeably higher (~+60% at 2 partitions, gap narrowing with
// more partitions); hashing highest. Chiller wins Figure 7 anyway — the
// point of the paper: distributed-transaction count is the wrong objective
// on fast networks.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

void Main(const BenchFlags& flags) {
  std::printf(
      "Figure 8 — ratio of distributed transactions vs partitions\n"
      "paper shape: Schism < Chiller < Hashing; gap narrows with more\n"
      "partitions.\n\n");

  BenchReport report("fig8");
  report.SetConfig("trace_txns", 8000);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  wopts.tail_theta = flags.theta;

  std::vector<double> ks = {2, 3, 4, 5, 6, 7, 8};
  std::vector<double> hash_s, schism_s, chiller_s, resid_chiller, resid_hash,
      resid_schism;
  for (double kd : ks) {
    const uint32_t k = static_cast<uint32_t>(kd);
    instacart::InstacartWorkload wl(wopts);
    auto layouts = BuildInstacartLayouts(&wl, k, /*trace_txns=*/8000,
                                         /*seed=*/flags.seed + 6);
    // Evaluate on a fresh sample from the same distribution (test set).
    // flags.seed + 999 keeps the default (seed=1) identical to the
    // pre-harness Rng(1000 + k) runs.
    Rng rng(flags.seed + 999 + k);
    auto eval = wl.GenerateTrace(8000, &rng);
    hash_s.push_back(partition::DistributedRatio(eval, *layouts.hashing));
    schism_s.push_back(partition::DistributedRatio(eval, *layouts.schism));
    chiller_s.push_back(
        partition::DistributedRatio(eval, *layouts.chiller_out.partitioner));
    partition::StatsCollector stats;
    for (const auto& t : eval) stats.ObserveTrace(t);
    resid_hash.push_back(
        partition::ResidualContention(eval, *layouts.hashing, stats, 16.0));
    resid_schism.push_back(
        partition::ResidualContention(eval, *layouts.schism, stats, 16.0));
    resid_chiller.push_back(partition::ResidualContention(
        eval, *layouts.chiller_out.partitioner, stats, 16.0));
    struct LayoutRow {
      const char* layout;
      double dist;
      double resid;
    };
    for (const LayoutRow& r :
         {LayoutRow{"hash", hash_s.back(), resid_hash.back()},
          LayoutRow{"schism", schism_s.back(), resid_schism.back()},
          LayoutRow{"chiller", chiller_s.back(), resid_chiller.back()}}) {
      Json row = Json::MakeObject();
      row["params"]["partitions"] = k;
      row["params"]["layout"] = r.layout;
      row["distributed_ratio"] = r.dist;
      row["residual_contention"] = r.resid;
      report.Add(std::move(row));
    }
  }

  PrintHeader("partitions", ks);
  PrintRow("Hashing", hash_s, "%8.3f");
  PrintRow("Schism", schism_s, "%8.3f");
  PrintRow("Chiller", chiller_s, "%8.3f");

  std::printf("\nResidual contention (the objective Chiller optimizes; "
              "lower is better):\n");
  PrintHeader("partitions", ks);
  PrintRow("Hashing", resid_hash, "%8.1f");
  PrintRow("Schism", resid_schism, "%8.1f");
  PrintRow("Chiller", resid_chiller, "%8.1f");

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig8"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.6;  // the Instacart catalog tail skew
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig8", defaults));
}
