// Figure 8: ratio of distributed transactions produced by each partitioning
// scheme, vs. number of partitions, on the Instacart-like workload.
//
// Paper expectation: Schism lowest (it optimizes exactly this metric);
// Chiller noticeably higher (~+60% at 2 partitions, gap narrowing with
// more partitions); hashing highest. Chiller wins Figure 7 anyway — the
// point of the paper: distributed-transaction count is the wrong objective
// on fast networks.
//
// No simulator runs here — each grid point builds the three layouts and
// evaluates them on a held-out trace, fanned across the --jobs pool.
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "partition/metrics.h"
#include "runner/sweep.h"
#include "workload/instacart.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

struct KPoint {
  double dist_hash, dist_schism, dist_chiller;
  double resid_hash, resid_schism, resid_chiller;
};

void Main(const BenchFlags& flags) {
  RejectLoadModelFlags(flags, "fig8");
  std::printf(
      "Figure 8 — ratio of distributed transactions vs partitions\n"
      "paper shape: Schism < Chiller < Hashing; gap narrows with more\n"
      "partitions.\n\n");

  BenchReport report("fig8");
  report.SetConfig("trace_txns", 8000);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  wopts.tail_theta = flags.theta;

  const std::vector<double> ks = {2, 3, 4, 5, 6, 7, 8};
  auto points = runner::ParallelMap(flags.jobs, ks.size(), [&](size_t i) {
    const uint32_t k = static_cast<uint32_t>(ks[i]);
    instacart::InstacartWorkload wl(wopts);
    auto layouts = instacart::BuildInstacartLayouts(&wl, k, /*trace_txns=*/8000,
                                                    /*seed=*/flags.seed + 6);
    // Evaluate on a fresh sample from the same distribution (test set).
    // flags.seed + 999 keeps the default (seed=1) identical to the
    // pre-harness Rng(1000 + k) runs.
    Rng rng(flags.seed + 999 + k);
    auto eval = wl.GenerateTrace(8000, &rng);
    partition::StatsCollector stats;
    for (const auto& t : eval) stats.ObserveTrace(t);

    KPoint p;
    p.dist_hash = partition::DistributedRatio(eval, *layouts.hashing);
    p.dist_schism = partition::DistributedRatio(eval, *layouts.schism);
    p.dist_chiller =
        partition::DistributedRatio(eval, *layouts.chiller_out.partitioner);
    p.resid_hash =
        partition::ResidualContention(eval, *layouts.hashing, stats, 16.0);
    p.resid_schism =
        partition::ResidualContention(eval, *layouts.schism, stats, 16.0);
    p.resid_chiller = partition::ResidualContention(
        eval, *layouts.chiller_out.partitioner, stats, 16.0);
    std::fprintf(stderr, "  [fig8] k=%u done\n", k);
    return p;
  });

  std::vector<double> hash_s, schism_s, chiller_s, resid_hash, resid_schism,
      resid_chiller;
  for (size_t i = 0; i < points.size(); ++i) {
    const KPoint& p = points[i];
    const uint32_t k = static_cast<uint32_t>(ks[i]);
    hash_s.push_back(p.dist_hash);
    schism_s.push_back(p.dist_schism);
    chiller_s.push_back(p.dist_chiller);
    resid_hash.push_back(p.resid_hash);
    resid_schism.push_back(p.resid_schism);
    resid_chiller.push_back(p.resid_chiller);
    struct LayoutRow {
      const char* layout;
      double dist;
      double resid;
    };
    for (const LayoutRow& r :
         {LayoutRow{"hash", p.dist_hash, p.resid_hash},
          LayoutRow{"schism", p.dist_schism, p.resid_schism},
          LayoutRow{"chiller", p.dist_chiller, p.resid_chiller}}) {
      Json row = Json::MakeObject();
      row["params"]["partitions"] = k;
      row["params"]["layout"] = r.layout;
      row["distributed_ratio"] = r.dist;
      row["residual_contention"] = r.resid;
      report.Add(std::move(row));
    }
  }

  PrintHeader("partitions", ks);
  PrintRow("Hashing", hash_s, "%8.3f");
  PrintRow("Schism", schism_s, "%8.3f");
  PrintRow("Chiller", chiller_s, "%8.3f");

  std::printf("\nResidual contention (the objective Chiller optimizes; "
              "lower is better):\n");
  PrintHeader("partitions", ks);
  PrintRow("Hashing", resid_hash, "%8.1f");
  PrintRow("Schism", resid_schism, "%8.1f");
  PrintRow("Chiller", resid_chiller, "%8.1f");

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig8"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.6;  // the Instacart catalog tail skew
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig8", defaults));
}
