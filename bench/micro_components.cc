// google-benchmark micro benchmarks for the core components, including the
// Section 4.1 claim that contention likelihoods for ~1M records compute in
// seconds.
#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"
#include "migrate/migration_plan.h"
#include "migrate/relayout.h"
#include "partition/contention_model.h"
#include "partition/lookup_table.h"
#include "partition/multilevel_partitioner.h"
#include "partition/stats_collector.h"
#include "partition/workload_graph.h"
#include "runner/runner.h"
#include "schedule/scheduler.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "storage/lock_word.h"
#include "txn/dependency_graph.h"

namespace chiller {
namespace {

void BM_LockWordAcquireRelease(benchmark::State& state) {
  uint64_t w = storage::LockWord::MakeFree(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::LockWord::TryAcquireExclusive(&w));
    storage::LockWord::ReleaseExclusive(&w, true);
  }
}
BENCHMARK(BM_LockWordAcquireRelease);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.Push(rng.Uniform(1000000), [] {});
    while (!q.empty()) q.Pop();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(static_cast<SimTime>(i), [&count] { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(1000000, 0.99);
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Next(&rng));
}
BENCHMARK(BM_ZipfNext);

void BM_AliasSamplerNext(benchmark::State& state) {
  std::vector<double> weights(100000);
  Rng seed_rng(3);
  for (auto& w : weights) w = seed_rng.NextDouble();
  AliasSampler sampler(weights);
  Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(sampler.Next(&rng));
}
BENCHMARK(BM_AliasSamplerNext);

void BM_ContentionLikelihood(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::ContentionModel::ConflictLikelihood(
        rng.NextDouble() * 4, rng.NextDouble() * 4));
  }
}
BENCHMARK(BM_ContentionLikelihood);

/// Section 4.1: "even for a sample with one million records, such
/// calculation can be performed in a matter of a few seconds".
void BM_ContentionForMillionRecords(benchmark::State& state) {
  partition::StatsCollector stats;
  Rng rng(6);
  partition::TxnAccessTrace trace;
  for (int t = 0; t < 100000; ++t) {
    trace.accesses.clear();
    for (int i = 0; i < 10; ++i) {
      trace.accesses.emplace_back(RecordId{0, rng.Uniform(1000000)},
                                  rng.Bernoulli(0.5));
    }
    stats.ObserveTrace(trace);
  }
  for (auto _ : state) {
    auto pcs = stats.ContentionLikelihoods(16.0);
    benchmark::DoNotOptimize(pcs.data());
  }
}
BENCHMARK(BM_ContentionForMillionRecords)->Unit(benchmark::kMillisecond);

void BM_TwoRegionPlan(benchmark::State& state) {
  // Wired through the scenario runner — the flight bundle supplies the
  // partitioner and the transaction source, exactly as a real run would.
  runner::ScenarioSpec spec;
  spec.workload = "flight";
  spec.nodes = 8;
  auto env = runner::ScenarioRunner::Wire(spec);
  CHILLER_CHECK(env.ok()) << env.status().ToString();
  const partition::RecordPartitioner* part = env->bundle->partitioner();
  Rng rng(12345);
  auto t = env->bundle->source()->Next(/*home=*/5, &rng);
  t->ResolveReadyKeys();
  for (auto& a : t->accesses) {
    if (a.key_resolved) a.partition = part->PartitionOf(a.rid);
  }
  for (auto _ : state) {
    auto plan = txn::DependencyAnalysis::Plan(
        *t, [&](const RecordId& r) { return part->IsHot(r); },
        [&](const RecordId& r) { return part->PartitionOf(r); });
    benchmark::DoNotOptimize(plan.inner_host);
  }
}
BENCHMARK(BM_TwoRegionPlan);

/// Full scenario wiring (schema, data load, partitioner, protocol, driver)
/// for a small ycsb cluster: the fixed cost every sweep point pays before
/// its first simulated event.
void BM_ScenarioWire(benchmark::State& state) {
  runner::ScenarioSpec spec;
  spec.workload = "ycsb";
  spec.nodes = 4;
  spec.options.Set("keys_per_partition", 1000);
  for (auto _ : state) {
    auto env = runner::ScenarioRunner::Wire(spec);
    CHILLER_CHECK(env.ok()) << env.status().ToString();
    benchmark::DoNotOptimize(env->cluster->TotalPrimaryRecords());
  }
}
BENCHMARK(BM_ScenarioWire)->Unit(benchmark::kMillisecond);

/// The admission scheduler's per-arrival cost: classify a drawn ycsb
/// transaction by its hottest record and route it to an engine. This runs
/// once per arrival under the open model, so it must stay far below one
/// simulated interarrival gap.
void BM_SchedulerRoute(benchmark::State& state) {
  runner::ScenarioSpec spec;
  spec.workload = "ycsb";
  spec.nodes = 4;
  spec.options.Set("keys_per_partition", 1000);
  spec.options.Set("theta", 0.95);
  auto env = runner::ScenarioRunner::Wire(spec);
  CHILLER_CHECK(env.ok()) << env.status().ToString();
  schedule::SchedulerContext ctx;
  ctx.num_engines = spec.partitions();
  ctx.partitioner = env->bundle->partitioner();
  auto sched =
      schedule::SchedulerRegistry::Global().Make("hash-affinity", ctx);
  CHILLER_CHECK(sched.ok()) << sched.status().ToString();

  // A pool of drawn transactions, pre-resolved exactly like Driver::Draw.
  Rng rng(21);
  std::vector<std::unique_ptr<txn::Transaction>> pool;
  for (int i = 0; i < 256; ++i) {
    auto t = env->bundle->source()->Next(
        static_cast<PartitionId>(i % spec.partitions()), &rng);
    if (t->accesses.empty()) t->InitAccesses();
    t->ResolveReadyKeys();
    pool.push_back(std::move(t));
  }
  size_t i = 0;
  for (auto _ : state) {
    const txn::Transaction& t = *pool[i];
    const uint32_t cls = sched.value()->Classify(t);
    benchmark::DoNotOptimize(
        sched.value()->Route(t, cls, static_cast<EngineId>(i % 4)));
    i = (i + 1) % pool.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerRoute);

/// The migration planner's full-cluster placement diff: walk every primary
/// record, compare the live and target layouts, and group the movers into
/// per-relayout-bucket units. Runs once per replan decision (every
/// controller epoch that trips the drift threshold), so it must stay cheap
/// next to the simulated relayout it schedules.
void BM_MigrationPlanDiff(benchmark::State& state) {
  runner::ScenarioSpec spec;
  spec.workload = "ycsb";
  spec.nodes = 4;
  spec.options.Set("keys_per_partition", 2000);
  auto env = runner::ScenarioRunner::Wire(spec);
  CHILLER_CHECK(env.ok()) << env.status().ToString();
  // Target layout: every 10th record re-homed one partition over — the
  // shape of a modest replan (most records stay put).
  auto target = std::make_unique<partition::LookupPartitioner>(
      std::make_unique<partition::HashPartitioner>(spec.partitions()));
  uint64_t i = 0;
  for (PartitionId p = 0; p < spec.partitions(); ++p) {
    env->cluster->primary(p)->ForEach(
        [&](const RecordId& rid, const storage::Record&) {
          if (i++ % 10 == 0) {
            target->Assign(rid, (p + 1) % spec.partitions());
          }
        });
  }
  for (auto _ : state) {
    auto plan = migrate::MigrationPlan::Diff(env->cluster.get(), *target,
                                             /*num_buckets=*/64);
    benchmark::DoNotOptimize(plan.units.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          env->cluster->TotalPrimaryRecords());
}
BENCHMARK(BM_MigrationPlanDiff)->Unit(benchmark::kMicrosecond);

/// The protocol-side migration gate: every record access of every
/// transaction probes BucketLockTable::IsMigrating while a relayout epoch
/// is live — with several buckets locked (the concurrent-streams shape)
/// and one storage bucket frozen, the worst realistic case.
void BM_BucketLockProbe(benchmark::State& state) {
  migrate::BucketLockTable locks;
  locks.BeginEpoch(/*num_buckets=*/64);
  for (migrate::BucketId b : {3u, 17u, 31u, 58u}) locks.Acquire(b);
  locks.FreezeStorageBucket({PartitionId{1}, TableId{0}, size_t{42}});
  Rng rng(23);
  std::vector<RecordId> rids;
  rids.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    rids.push_back(RecordId{0, rng.Uniform(1u << 20)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(locks.IsMigrating(rids[i]));
    i = (i + 1) % rids.size();
  }
  state.SetItemsProcessed(state.iterations());
  for (migrate::BucketId b : {3u, 17u, 31u, 58u}) locks.Release(b);
  locks.UnfreezeStorageBucket({PartitionId{1}, TableId{0}, size_t{42}});
  locks.EndEpoch();
}
BENCHMARK(BM_BucketLockProbe);

void BM_MultilevelPartition(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(7);
  partition::Graph g;
  g.adj.resize(n);
  g.vwgt.assign(n, 1.0);
  for (uint32_t e = 0; e < n * 4; ++e) {
    uint32_t a = rng.Uniform(n), b = rng.Uniform(n);
    if (a == b) continue;
    g.adj[a].emplace_back(b, 1.0 + rng.NextDouble());
    g.adj[b].emplace_back(a, 1.0 + rng.NextDouble());
  }
  for (auto _ : state) {
    auto result = partition::MultilevelPartitioner::Partition(
        g, {.k = 8, .seed = 11});
    benchmark::DoNotOptimize(result.cut_weight);
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chiller

BENCHMARK_MAIN();
