// Ablation for the Section 4.4 co-optimization: adding a minimum weight to
// every star edge also pulls co-accessed cold records together, trading
// residual contention for fewer distributed transactions.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

void Main(const BenchFlags& flags) {
  std::printf(
      "Ablation — Section 4.4 co-optimization (min edge weight sweep).\n"
      "Larger minimum weights co-locate whole transactions (fewer\n"
      "distributed txns) at some cost in residual contention.\n\n");

  BenchReport report("ablation_cooptimization");
  report.SetConfig("partitions", 8);
  report.SetConfig("trace_txns", 8000);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  wopts.tail_theta = flags.theta;
  instacart::InstacartWorkload wl(wopts);
  // flags.seed + 30/31 keeps the default (seed=1) identical to the
  // pre-harness Rng(31)/Rng(32) runs.
  Rng rng(flags.seed + 30);
  auto traces = wl.GenerateTrace(8000, &rng);
  partition::StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);
  Rng eval_rng(flags.seed + 31);
  auto eval = wl.GenerateTrace(8000, &eval_rng);
  partition::StatsCollector eval_stats;
  for (const auto& t : eval) eval_stats.ObserveTrace(t);

  std::printf("%-16s %14s %14s %14s\n", "min-edge-weight", "dist-ratio",
              "resid-cont", "cut");
  for (double w : {0.0, 0.01, 0.05, 0.2, 0.5, 1.0}) {
    partition::ChillerPartitioner::Options opts;
    opts.k = 8;
    opts.hot_threshold = 0.01;
    opts.min_edge_weight = w;
    auto out = partition::ChillerPartitioner::Build(traces, opts);
    const double dist = partition::DistributedRatio(eval, *out.partitioner);
    const double resid = partition::ResidualContention(eval, *out.partitioner,
                                                       eval_stats, 16.0);
    std::printf("%-16.2f %14.3f %14.1f %14.1f\n", w, dist, resid,
                out.report.cut_weight);

    Json row = Json::MakeObject();
    row["params"]["min_edge_weight"] = w;
    row["distributed_ratio"] = dist;
    row["residual_contention"] = resid;
    row["cut_weight"] = out.report.cut_weight;
    report.Add(std::move(row));
  }

  report.MaybeWrite(flags.emit_json,
                    flags.JsonPathFor("ablation_cooptimization"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.6;  // the Instacart catalog tail skew
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "ablation_cooptimization", defaults));
}
