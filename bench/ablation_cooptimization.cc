// Ablation for the Section 4.4 co-optimization: adding a minimum weight to
// every star edge also pulls co-accessed cold records together, trading
// residual contention for fewer distributed transactions.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

void Main() {
  std::printf(
      "Ablation — Section 4.4 co-optimization (min edge weight sweep).\n"
      "Larger minimum weights co-locate whole transactions (fewer\n"
      "distributed txns) at some cost in residual contention.\n\n");

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  instacart::InstacartWorkload wl(wopts);
  Rng rng(31);
  auto traces = wl.GenerateTrace(8000, &rng);
  partition::StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);
  Rng eval_rng(32);
  auto eval = wl.GenerateTrace(8000, &eval_rng);
  partition::StatsCollector eval_stats;
  for (const auto& t : eval) eval_stats.ObserveTrace(t);

  std::printf("%-16s %14s %14s %14s\n", "min-edge-weight", "dist-ratio",
              "resid-cont", "cut");
  for (double w : {0.0, 0.01, 0.05, 0.2, 0.5, 1.0}) {
    partition::ChillerPartitioner::Options opts;
    opts.k = 8;
    opts.hot_threshold = 0.01;
    opts.min_edge_weight = w;
    auto out = partition::ChillerPartitioner::Build(traces, opts);
    std::printf("%-16.2f %14.3f %14.1f %14.1f\n", w,
                partition::DistributedRatio(eval, *out.partitioner),
                partition::ResidualContention(eval, *out.partitioner,
                                              eval_stats, 16.0),
                out.report.cut_weight);
  }
}

}  // namespace
}  // namespace chiller::bench

int main() { chiller::bench::Main(); }
