// Ablation for the Section 4.4 co-optimization: adding a minimum weight to
// every star edge also pulls co-accessed cold records together, trading
// residual contention for fewer distributed transactions.
//
// Each min-weight point builds its own partitioner from the shared trace,
// fanned across the --jobs pool.
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "partition/chiller_partitioner.h"
#include "partition/metrics.h"
#include "runner/sweep.h"
#include "workload/instacart.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

void Main(const BenchFlags& flags) {
  RejectLoadModelFlags(flags, "ablation_cooptimization");
  std::printf(
      "Ablation — Section 4.4 co-optimization (min edge weight sweep).\n"
      "Larger minimum weights co-locate whole transactions (fewer\n"
      "distributed txns) at some cost in residual contention.\n\n");

  BenchReport report("ablation_cooptimization");
  report.SetConfig("partitions", 8);
  report.SetConfig("trace_txns", 8000);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  wopts.tail_theta = flags.theta;
  instacart::InstacartWorkload wl(wopts);
  // flags.seed + 30/31 keeps the default (seed=1) identical to the
  // pre-harness Rng(31)/Rng(32) runs.
  Rng rng(flags.seed + 30);
  const auto traces = wl.GenerateTrace(8000, &rng);
  partition::StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);
  Rng eval_rng(flags.seed + 31);
  const auto eval = wl.GenerateTrace(8000, &eval_rng);
  partition::StatsCollector eval_stats;
  for (const auto& t : eval) eval_stats.ObserveTrace(t);

  const std::vector<double> weights = {0.0, 0.01, 0.05, 0.2, 0.5, 1.0};
  struct WPoint {
    double dist = 0;
    double resid = 0;
    double cut = 0;
  };
  // The trace/eval vectors are shared read-only across workers.
  auto points =
      runner::ParallelMap(flags.jobs, weights.size(), [&](size_t i) {
        partition::ChillerPartitioner::Options opts;
        opts.k = 8;
        opts.hot_threshold = 0.01;
        opts.min_edge_weight = weights[i];
        auto out = partition::ChillerPartitioner::Build(traces, opts);
        WPoint p;
        p.dist = partition::DistributedRatio(eval, *out.partitioner);
        p.resid = partition::ResidualContention(eval, *out.partitioner,
                                                eval_stats, 16.0);
        p.cut = out.report.cut_weight;
        return p;
      });

  std::printf("%-16s %14s %14s %14s\n", "min-edge-weight", "dist-ratio",
              "resid-cont", "cut");
  for (size_t i = 0; i < weights.size(); ++i) {
    const WPoint& p = points[i];
    std::printf("%-16.2f %14.3f %14.1f %14.1f\n", weights[i], p.dist, p.resid,
                p.cut);

    Json row = Json::MakeObject();
    row["params"]["min_edge_weight"] = weights[i];
    row["distributed_ratio"] = p.dist;
    row["residual_contention"] = p.resid;
    row["cut_weight"] = p.cut;
    report.Add(std::move(row));
  }

  report.MaybeWrite(flags.emit_json,
                    flags.JsonPathFor("ablation_cooptimization"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.6;  // the Instacart catalog tail skew
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "ablation_cooptimization", defaults));
}
