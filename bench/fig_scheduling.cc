// Contention-aware admission scheduling under offered load.
//
// The scheduler stage (schedule/scheduler.h) sits between arrival and
// engine admission: it classifies every transaction by its hottest record
// and decides which engine runs it. This bench measures what that buys on
// the synthetic YCSB-style workload, where the Zipf theta knob dials the
// conflict rate directly:
//
//   stage 1  closed-loop capacity probe per (protocol, theta) — the
//            saturation throughput C. Probes run the default fifo
//            passthrough, so the offered-load grid is identical for every
//            scheduler (the comparison is apples-to-apples by construction).
//   stage 2  open-loop sweep of offered load {0.2..1.1} x C for each
//            scheduler: p99 execution latency, p99 queueing delay, shed
//            rate per point.
//
// The headline number is the *knee* per (protocol, theta, scheduler): the
// highest offered load sustained with nothing shed and p99 queueing delay
// below p99 execution latency (same definition as the latency bench). Under
// fifo, skewed arrivals land on whatever engine they arrived at, conflict,
// and burn service slots on aborted attempts and backoff; hash-affinity
// routes each conflict class to its owner engine and never runs two
// transactions of one hot class concurrently, so the same engines sustain a
// higher offered load before the admission queue takes over.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

constexpr double kThetas[] = {0.7, 0.99};
constexpr double kFractions[] = {0.2, 0.4, 0.5,  0.6, 0.65, 0.7, 0.75,
                                 0.8, 0.85, 0.9, 0.95, 1.0, 1.1};
const std::vector<std::string> kSchedulers = {"fifo", "hash-affinity"};

struct Point {
  double offered_tps;
  double fraction;
  double throughput_tps;
  double exec_p99_ns;
  double queue_p99_ns;
  double shed_rate;
};

runner::ScenarioSpec BaseSpec(const BenchFlags& flags,
                              const std::string& proto, double theta) {
  runner::ScenarioSpec spec;
  spec.label = proto;
  spec.workload = "ycsb";
  spec.protocol = proto;
  spec.nodes = flags.nodes;
  spec.engines_per_node = flags.engines;
  spec.concurrency = flags.concurrency;
  spec.seed = flags.seed;
  spec.warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
  spec.measure = static_cast<SimTime>(flags.duration_ms * kMillisecond);
  spec.options.Set("theta", theta);
  // Short write-only transactions put the whole run in the contention
  // regime the scheduler targets: every hot access takes an exclusive
  // lock (reads would share theirs and dilute the conflict rate), and a
  // 2-op footprint keeps the serialized conflict-class residence — the
  // price hash-affinity pays for suppressing abort storms — small next to
  // what those storms cost fifo.
  spec.options.Set("ops_per_txn", 2);
  spec.options.Set("read_ratio", 0.0);
  spec.options.Set("hot_keys_per_partition", 2);
  spec.options.Set("distributed_ratio", 0.1);
  spec.footprint_hint = runner::EstimateFootprint(spec);
  return spec;
}

void Main(const BenchFlags& flags) {
  // The scheduler and load-model axes ARE this bench's sweep: stage 1 is
  // always the closed-loop capacity probe and stage 2 always the open-loop
  // scheduler grid. Refuse the shared flags the sweep fixes; --arrival,
  // --queue-cap, and --sched-classes still shape the open loop.
  if (flags.load_model != "closed" || flags.offered_tps != 0.0 ||
      flags.batch_size != BenchFlags{}.batch_size ||
      flags.scheduler != BenchFlags{}.scheduler ||
      flags.shed_policy != BenchFlags{}.shed_policy) {
    std::fprintf(stderr,
                 "scheduling: this bench sweeps the scheduler and load "
                 "model itself — --load-model, --offered-tps, --batch-size, "
                 "--scheduler, and --shed-policy are fixed by the sweep "
                 "(use --arrival / --queue-cap / --sched-classes / "
                 "--concurrency to shape it)\n");
    std::exit(1);
  }
  {
    runner::ScenarioSpec probe;
    ApplyLoadModelFlags(flags, &probe);
    probe.concurrency = flags.concurrency;
    probe.load_model = "open";
    probe.offered_tps = 1.0;
    const Status st = cc::ValidateLoadModelParams(
        probe.load_model, probe.MakeLoadModelParams());
    if (!st.ok()) {
      std::fprintf(stderr, "scheduling: %s\n", st.message().c_str());
      std::exit(1);
    }
  }

  const std::vector<std::string> protocols = {"2pl", "occ", "chiller",
                                              "chiller-plain"};

  std::printf(
      "Admission scheduling under offered load — YCSB, %u nodes x %u "
      "engines,\nopen-loop %s arrivals, %u service slots and a %u-deep "
      "admission queue\nper engine; offered load swept as a fraction of "
      "each (protocol, theta)\npair's closed-loop capacity, once per "
      "scheduler.\n\n",
      flags.nodes, flags.engines, flags.arrival.c_str(), flags.concurrency,
      flags.queue_cap);

  BenchReport report("scheduling");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("concurrency", flags.concurrency);
  report.SetConfig("arrival", flags.arrival);
  report.SetConfig("queue_cap", flags.queue_cap);
  report.SetConfig("sched_classes", flags.sched_classes);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  const auto wall_start = std::chrono::steady_clock::now();
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "scheduling");

  // Stage 1: closed-loop capacity per (protocol, theta). Probes never
  // install a scheduler (fifo passthrough), so both stage-2 series share
  // one grid.
  std::vector<runner::ScenarioSpec> probes;
  for (const std::string& proto : protocols) {
    for (double theta : kThetas) probes.push_back(BaseSpec(flags, proto, theta));
  }
  auto probe_results = executor.Run(probes);

  const size_t grid = std::size(kThetas);
  std::vector<double> capacity(probes.size(), 0.0);
  Json capacity_json = Json::MakeObject();
  for (size_t i = 0; i < probes.size(); ++i) {
    const std::string& proto = protocols[i / grid];
    const double theta = kThetas[i % grid];
    if (!probe_results[i].ok()) {
      std::fprintf(stderr, "scheduling: capacity probe %s theta=%.2f failed: %s\n",
                   proto.c_str(), theta,
                   probe_results[i].status().ToString().c_str());
      std::exit(1);
    }
    capacity[i] = probe_results[i]->stats.Throughput();
    if (capacity[i] <= 0.0) {
      std::fprintf(stderr,
                   "scheduling: %s theta=%.2f closed-loop capacity probe "
                   "committed nothing (window too short?); cannot derive an "
                   "offered-load grid\n",
                   proto.c_str(), theta);
      std::exit(1);
    }
    char theta_key[16];
    std::snprintf(theta_key, sizeof(theta_key), "%.2f", theta);
    capacity_json[proto][theta_key] = capacity[i];
    std::fprintf(stderr,
                 "  [scheduling] %s theta=%.2f closed-loop capacity %.0f tps\n",
                 proto.c_str(), theta, capacity[i]);
  }
  report.SetConfig("capacity_tps", capacity_json);

  // Stage 2: the open-loop grid, one series per scheduler. Specs are a pure
  // function of the (equally deterministic) stage-1 results, so --jobs N
  // stays byte-identical.
  std::vector<runner::ScenarioSpec> specs;
  for (size_t pt = 0; pt < probes.size(); ++pt) {
    for (const std::string& sched : kSchedulers) {
      for (double f : kFractions) {
        runner::ScenarioSpec spec = BaseSpec(flags, protocols[pt / grid],
                                             kThetas[pt % grid]);
        spec.load_model = "open";
        spec.offered_tps = capacity[pt] * f;
        spec.arrival = flags.arrival;
        spec.queue_cap = flags.queue_cap;
        spec.scheduler = sched;
        spec.sched_classes = flags.sched_classes;
        specs.push_back(std::move(spec));
      }
    }
  }
  size_t completed = 0;  // progress callbacks are serialized by the executor
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr,
                     "  [scheduling] %s %s %s offered=%.0f %s (%zu/%zu)\n",
                     specs[i].protocol.c_str(),
                     specs[i].options.ToString().c_str(),
                     specs[i].scheduler.c_str(), specs[i].offered_tps,
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  // series[probe][scheduler] -> points in ascending fraction order.
  std::vector<std::vector<std::vector<Point>>> series(
      probes.size(), std::vector<std::vector<Point>>(kSchedulers.size()));
  const size_t per_probe = kSchedulers.size() * std::size(kFractions);
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "scheduling: scenario %zu failed: %s\n", i,
                   results[i].status().ToString().c_str());
      std::exit(1);
    }
    const runner::ScenarioResult& r = results[i].value();
    const cc::RunStats& stats = r.stats;
    const size_t pt = i / per_probe;
    const size_t sched = (i % per_probe) / std::size(kFractions);
    const double fraction = kFractions[i % std::size(kFractions)];

    Json params = Json::MakeObject();
    params["theta"] = kThetas[pt % grid];
    params["scheduler"] = r.spec.scheduler;
    params["offered_tps"] = r.spec.offered_tps;
    params["load_fraction"] = fraction;
    report.AddRun(r.spec.protocol, std::move(params), stats);

    Histogram latency;
    for (const auto& cls : stats.classes) latency.Merge(cls.latency);
    Point p;
    p.offered_tps = r.spec.offered_tps;
    p.fraction = fraction;
    p.throughput_tps = stats.Throughput();
    p.exec_p99_ns =
        latency.count() == 0 ? 0.0
                             : static_cast<double>(latency.Percentile(99));
    p.queue_p99_ns = stats.queue_delay.count() == 0
                         ? 0.0
                         : static_cast<double>(
                               stats.queue_delay.Percentile(99));
    p.shed_rate = stats.ShedRate();
    series[pt][sched].push_back(p);
  }

  // The knee: the highest offered load still served without
  // queue-dominated latency (nothing shed, p99 wait below p99 service).
  // Points are swept in ascending fraction order, so the last sustained
  // point is the knee.
  Json knee_json = Json::MakeObject();
  std::vector<std::vector<double>> knee(
      probes.size(), std::vector<double>(kSchedulers.size(), 0.0));
  for (size_t pt = 0; pt < probes.size(); ++pt) {
    char theta_key[16];
    std::snprintf(theta_key, sizeof(theta_key), "%.2f", kThetas[pt % grid]);
    for (size_t s = 0; s < kSchedulers.size(); ++s) {
      for (const Point& p : series[pt][s]) {
        const bool sustained =
            p.shed_rate == 0.0 && p.queue_p99_ns <= p.exec_p99_ns;
        if (sustained) knee[pt][s] = p.offered_tps;
      }
      knee_json[protocols[pt / grid]][theta_key][kSchedulers[s]] =
          knee[pt][s];
    }
  }
  report.SetConfig("knee_tps", knee_json);

  std::vector<double> columns(std::begin(kFractions), std::end(kFractions));
  for (size_t pt = 0; pt < probes.size(); ++pt) {
    std::printf("%s theta=%.2f (capacity %.0f tps)\n",
                protocols[pt / grid].c_str(), kThetas[pt % grid],
                capacity[pt]);
    std::printf("  shed rate:\n");
    PrintHeader("  offered / capacity", columns);
    for (size_t s = 0; s < kSchedulers.size(); ++s) {
      std::vector<double> row;
      for (const Point& p : series[pt][s]) row.push_back(p.shed_rate);
      PrintRow("  " + kSchedulers[s], row, "%8.3f");
    }
    std::printf("  p99 queueing delay (us):\n");
    PrintHeader("  offered / capacity", columns);
    for (size_t s = 0; s < kSchedulers.size(); ++s) {
      std::vector<double> row;
      for (const Point& p : series[pt][s]) row.push_back(p.queue_p99_ns / 1e3);
      PrintRow("  " + kSchedulers[s], row, "%8.1f");
    }
    std::printf("  knee: fifo %.3f M tps, hash-affinity %.3f M tps\n\n",
                knee[pt][0] / 1e6, knee[pt][1] / 1e6);
  }

  std::printf(
      "sweep: %zu scenarios in %.1f s wall-clock (--jobs %u, --shards %u)\n",
      probes.size() + specs.size(), sweep_ms / 1000.0, executor.jobs(),
      flags.shards);

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("scheduling"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  // Eight single-engine nodes: enough fan-out that a skewed record's
  // writers mostly arrive on engines that do not own it (7/8 of steering
  // decisions move work), while the 8-probe + 208-scenario grid stays
  // tractable. The 10-deep admission queue is deliberately shallow — deep
  // queues let p99 queueing delay blow past p99 execution latency long
  // before anything is shed, hiding the capacity difference between the
  // schedulers behind a bound both fail the same way.
  defaults.nodes = 8;
  defaults.engines = 1;
  defaults.queue_cap = 10;
  defaults.theta = 0.9;  // unused: the bench sweeps its own theta axis
  defaults.warmup_ms = 2.0;
  defaults.duration_ms = 10.0;
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "scheduling", defaults));
}
