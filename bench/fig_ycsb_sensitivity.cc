// YCSB sensitivity grid: zipf skew (theta) x fraction of distributed
// transactions, all four protocols on the same range layout. The two axes
// are the paper's evaluation knobs: theta moves records across the
// contention model's hot/cold boundary (Section 4.1), the distributed
// ratio is the Figure 10 x-axis decoupled from TPC-C semantics. Expected
// shape: every protocol degrades with skew, but Chiller's two-region
// execution holds its throughput where 2PL and OCC collapse, and stays
// nearly flat as transactions span partitions.
#include <chrono>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

void Main(const BenchFlags& flags) {
  std::printf(
      "YCSB sensitivity — %u nodes x %u engines, %u open txns/engine;\n"
      "theta x distributed_ratio grid for every protocol.\n\n",
      flags.nodes, flags.engines, flags.concurrency);

  BenchReport report("ycsb");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("concurrency", flags.concurrency);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  const std::vector<double> thetas = {0.5, 0.8, 0.95};
  const std::vector<double> dist_ratios = {0.0, 0.2, 0.5};
  const std::vector<std::string> protocols = {"2pl", "occ", "chiller",
                                              "chiller-plain"};

  std::vector<runner::ScenarioSpec> specs;
  for (double theta : thetas) {
    for (double dr : dist_ratios) {
      for (const std::string& proto : protocols) {
        runner::ScenarioSpec spec;
        spec.label = proto;
        spec.workload = "ycsb";
        spec.protocol = proto;
        spec.nodes = flags.nodes;
        spec.engines_per_node = flags.engines;
        spec.concurrency = flags.concurrency;
        spec.seed = flags.seed;
        spec.warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
        spec.measure = static_cast<SimTime>(flags.duration_ms * kMillisecond);
        ApplyLoadModelFlags(flags, &spec);
        spec.options.Set("theta", theta);
        spec.options.Set("distributed_ratio", dr);
        spec.footprint_hint = runner::EstimateFootprint(spec);
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "ycsb");
  size_t completed = 0;  // progress callbacks are serialized by the executor
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr, "  [ycsb] %s %s %s (%zu/%zu)\n",
                     specs[i].protocol.c_str(),
                     specs[i].options.ToString().c_str(),
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  // results[] is in grid order: theta-major, then distributed_ratio, then
  // protocol — recover the indices instead of re-deriving the grid.
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "ycsb: scenario %zu failed: %s\n", i,
                   results[i].status().ToString().c_str());
      std::exit(1);
    }
    const runner::ScenarioResult& r = results[i].value();
    Json params = Json::MakeObject();
    params["theta"] = r.spec.options.GetDouble("theta", 0.0);
    params["distributed_ratio"] =
        r.spec.options.GetDouble("distributed_ratio", 0.0);
    report.AddRun(r.spec.protocol, std::move(params), r.stats);
  }

  const size_t per_theta = dist_ratios.size() * protocols.size();
  for (size_t ti = 0; ti < thetas.size(); ++ti) {
    std::printf("theta = %.2f — throughput (M txns/sec) / abort rate\n",
                thetas[ti]);
    PrintHeader("% distributed", dist_ratios);
    for (size_t pi = 0; pi < protocols.size(); ++pi) {
      std::vector<double> tput, aborts;
      for (size_t di = 0; di < dist_ratios.size(); ++di) {
        const auto& r =
            results[ti * per_theta + di * protocols.size() + pi].value();
        tput.push_back(r.stats.Throughput() / 1e6);
        aborts.push_back(r.stats.AbortRate());
      }
      PrintRow(protocols[pi] + " tput", tput, "%8.3f");
      PrintRow(protocols[pi] + " abort", aborts, "%8.3f");
    }
    std::printf("\n");
  }

  std::printf("sweep: %zu scenarios in %.1f s wall-clock (--jobs %u, --shards %u)\n",
              specs.size(), sweep_ms / 1000.0, executor.jobs(),
              flags.shards);

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("ycsb"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.nodes = 4;
  defaults.duration_ms = 10.0;
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "ycsb", defaults));
}
