#include "bench/bench_flags.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "cc/load_model.h"
#include "runner/registry.h"
#include "schedule/scheduler.h"

namespace chiller::bench {
namespace {

/// Splits "--name=value" into name/value. Flags without '=' get an empty
/// value (only boolean flags accept that).
bool SplitFlag(const std::string& arg, std::string* name, std::string* value) {
  if (arg.rfind("--", 0) != 0) return false;
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) {
    *name = arg.substr(2);
    value->clear();
  } else {
    *name = arg.substr(2, eq - 2);
    *value = arg.substr(eq + 1);
  }
  return true;
}

template <typename T>
Status ParseNumber(const std::string& flag, const std::string& value, T* out) {
  if (value.empty()) {
    return Status::InvalidArgument("--" + flag + " requires a value");
  }
  T parsed{};
  const char* first = value.data();
  const char* last = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc() || ptr != last) {
    return Status::InvalidArgument("bad value for --" + flag + ": '" + value +
                                   "'");
  }
  *out = parsed;
  return Status::OK();
}

}  // namespace

std::string UsageString(const std::string& bench_name,
                        const BenchFlags& defaults) {
  const BenchFlags& d = defaults;
  std::string protocols;
  for (const std::string& name : runner::ProtocolRegistry::Global().Names()) {
    if (!protocols.empty()) protocols += " | ";
    protocols += name;
  }
  std::string schedulers;
  for (const std::string& name :
       schedule::SchedulerRegistry::Global().Names()) {
    if (!schedulers.empty()) schedulers += " | ";
    schedulers += name;
  }
  // Two-pass snprintf: the protocol list comes from the registry, so the
  // text has no static size bound (out-of-tree binaries register more).
  const auto format = [&](char* buf, size_t size) {
    return std::snprintf(
        buf, size,
        "usage: %s [flags]\n"
        "  --protocol=NAME     protocol where selectable: %s (default %s)\n"
        "  --nodes=N           cluster nodes (default %u)\n"
        "  --engines=N         engines per node (default %u)\n"
        "  --concurrency=N     open txns per engine (default %u)\n"
        "  --warmup-ms=F       simulated warmup, ms (default %g)\n"
        "  --duration-ms=F     simulated measurement window, ms (default %g)\n"
        "  --theta=F           Zipf skew where applicable (default %g)\n"
        "  --seed=N            base RNG seed (default %llu)\n"
        "  --load-model=NAME   closed | open | batched (default %s)\n"
        "  --offered-tps=F     open loop: cluster-wide offered load, txns/sec"
        " (default %g)\n"
        "  --arrival=NAME      open loop: poisson | uniform (default %s)\n"
        "  --queue-cap=N       open loop: per-engine admission queue bound"
        " (default %u)\n"
        "  --batch-size=N      batched: admissions per engine batch"
        " (default %u)\n"
        "  --scheduler=NAME    admission scheduler: %s (default %s)\n"
        "  --sched-classes=N   conflict-class universe, 0 = auto"
        " (default %u)\n"
        "  --shed-policy=NAME  scheduled-queue overflow: drop-new |"
        " drop-cold | drop-hot (default %s)\n"
        "  --jobs=N            sweep worker threads, 0 = all hardware threads"
        " (default %u)\n"
        "  --shards=N          simulator shards per scenario; results are"
        " byte-identical for any N (default %u)\n"
        "  --mem-budget-mb=N   cap summed footprint of concurrently-loaded"
        " scenarios, 0 = unlimited (default %llu)\n"
        "  --trace-out=FILE    write a Chrome trace-event JSON of the"
        " sampled transactions (Perfetto-loadable)\n"
        "  --trace-sample-every=N  trace every Nth logical transaction per"
        " engine; 0 = off, --trace-out alone implies 1 (default %u)\n"
        "  --json=PATH         JSON report path (default BENCH_%s.json)\n"
        "  --no-json           skip the JSON report\n"
        "  --list-protocols    print registered protocols and exit\n"
        "  --list-workloads    print registered workloads and exit\n"
        "  --list-schedulers   print registered schedulers and exit\n"
        "  --list-shed-policies  print shed policies and exit\n"
        "  --help              show this message\n",
        bench_name.c_str(), protocols.c_str(), d.protocol.c_str(), d.nodes,
        d.engines, d.concurrency, d.warmup_ms, d.duration_ms, d.theta,
        static_cast<unsigned long long>(d.seed), d.load_model.c_str(),
        d.offered_tps, d.arrival.c_str(), d.queue_cap, d.batch_size,
        schedulers.c_str(), d.scheduler.c_str(), d.sched_classes,
        d.shed_policy.c_str(), d.jobs, d.shards,
        static_cast<unsigned long long>(d.mem_budget_mb),
        d.trace_sample_every, bench_name.c_str());
  };
  const int needed = format(nullptr, 0);
  std::string out(static_cast<size_t>(needed) + 1, '\0');
  format(out.data(), out.size());
  out.resize(static_cast<size_t>(needed));
  return out;
}

Status ParseBenchFlags(int argc, const char* const* argv, BenchFlags* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string name, value;
    if (!SplitFlag(arg, &name, &value)) {
      return Status::InvalidArgument("unexpected argument '" + arg + "'");
    }
    Status st;
    if (name == "help") {
      out->help = true;
      return Status::OK();
    } else if (name == "list-protocols") {
      out->list_protocols = true;
    } else if (name == "list-workloads") {
      out->list_workloads = true;
    } else if (name == "list-schedulers") {
      out->list_schedulers = true;
    } else if (name == "list-shed-policies") {
      out->list_shed_policies = true;
    } else if (name == "no-json") {
      out->emit_json = false;
    } else if (name == "protocol") {
      if (value.empty()) {
        return Status::InvalidArgument("--protocol requires a value");
      }
      out->protocol = value;
    } else if (name == "json") {
      if (value.empty()) {
        return Status::InvalidArgument("--json requires a value");
      }
      out->json_path = value;
    } else if (name == "nodes") {
      st = ParseNumber(name, value, &out->nodes);
    } else if (name == "engines") {
      st = ParseNumber(name, value, &out->engines);
    } else if (name == "concurrency") {
      st = ParseNumber(name, value, &out->concurrency);
    } else if (name == "warmup-ms") {
      st = ParseNumber(name, value, &out->warmup_ms);
    } else if (name == "duration-ms") {
      st = ParseNumber(name, value, &out->duration_ms);
    } else if (name == "theta") {
      st = ParseNumber(name, value, &out->theta);
    } else if (name == "seed") {
      st = ParseNumber(name, value, &out->seed);
    } else if (name == "load-model") {
      if (value.empty()) {
        return Status::InvalidArgument("--load-model requires a value");
      }
      out->load_model = value;
    } else if (name == "offered-tps") {
      st = ParseNumber(name, value, &out->offered_tps);
    } else if (name == "arrival") {
      if (value.empty()) {
        return Status::InvalidArgument("--arrival requires a value");
      }
      out->arrival = value;
    } else if (name == "queue-cap") {
      st = ParseNumber(name, value, &out->queue_cap);
    } else if (name == "batch-size") {
      st = ParseNumber(name, value, &out->batch_size);
    } else if (name == "scheduler") {
      if (value.empty()) {
        return Status::InvalidArgument("--scheduler requires a value");
      }
      out->scheduler = value;
    } else if (name == "sched-classes") {
      st = ParseNumber(name, value, &out->sched_classes);
    } else if (name == "shed-policy") {
      if (value.empty()) {
        return Status::InvalidArgument("--shed-policy requires a value");
      }
      out->shed_policy = value;
    } else if (name == "jobs") {
      st = ParseNumber(name, value, &out->jobs);
    } else if (name == "shards") {
      st = ParseNumber(name, value, &out->shards);
    } else if (name == "mem-budget-mb") {
      st = ParseNumber(name, value, &out->mem_budget_mb);
    } else if (name == "trace-out") {
      if (value.empty()) {
        return Status::InvalidArgument("--trace-out requires a value");
      }
      out->trace_out = value;
    } else if (name == "trace-sample-every") {
      st = ParseNumber(name, value, &out->trace_sample_every);
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
    if (!st.ok()) return st;
  }
  if (out->nodes == 0 || out->engines == 0 || out->concurrency == 0) {
    return Status::InvalidArgument(
        "--nodes, --engines, and --concurrency must be positive");
  }
  if (out->warmup_ms < 0 || out->duration_ms <= 0) {
    return Status::InvalidArgument(
        "--warmup-ms must be >= 0 and --duration-ms > 0");
  }
  if (out->shards == 0) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  if (!out->trace_out.empty() && out->trace_sample_every == 0) {
    // --trace-out alone means "trace everything": an empty trace from a
    // forgotten sampling flag helps nobody.
    out->trace_sample_every = 1;
  }
  // Same validator and spec conversion the runner applies per scenario,
  // run here so a bad combination (--load-model=open without
  // --offered-tps, --queue-cap=0, an unknown --arrival) fails before any
  // sweep starts.
  runner::ScenarioSpec lm_spec;
  ApplyLoadModelFlags(*out, &lm_spec);
  lm_spec.concurrency = out->concurrency;
  lm_spec.seed = out->seed;
  Status lm_st = cc::ValidateLoadModelParams(lm_spec.load_model,
                                             lm_spec.MakeLoadModelParams());
  if (!lm_st.ok()) return lm_st;
  // Names only: benches may pin the load model per grid point (fig9 forces
  // "open" for its latency axis), so scheduler/model compatibility is the
  // runner's per-scenario check, not a flag-time one.
  return schedule::ValidateSchedulerNames(out->scheduler, out->shed_policy);
}

BenchFlags ParseBenchFlagsOrExit(int argc, const char* const* argv,
                                 const std::string& bench_name,
                                 BenchFlags defaults) {
  BenchFlags flags = defaults;
  const Status st = ParseBenchFlags(argc, argv, &flags);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n%s", bench_name.c_str(),
                 st.message().c_str(),
                 UsageString(bench_name, defaults).c_str());
    std::exit(1);
  }
  if (flags.help) {
    std::fputs(UsageString(bench_name, defaults).c_str(), stdout);
    std::exit(0);
  }
  if (flags.list_protocols || flags.list_workloads || flags.list_schedulers ||
      flags.list_shed_policies) {
    if (flags.list_protocols) {
      for (const auto& n : runner::ProtocolRegistry::Global().Names()) {
        std::printf("%s\n", n.c_str());
      }
    }
    if (flags.list_workloads) {
      for (const auto& n : runner::WorkloadRegistry::Global().Names()) {
        std::printf("%s\n", n.c_str());
      }
    }
    if (flags.list_schedulers) {
      for (const auto& n : schedule::SchedulerRegistry::Global().Names()) {
        std::printf("%s\n", n.c_str());
      }
    }
    if (flags.list_shed_policies) {
      // ShedPolicy is a closed enum, not a registry; enumerate it here so
      // the flag keeps parity with the registry-backed --list-* flags.
      for (const auto policy :
           {schedule::ShedPolicy::kDropNew, schedule::ShedPolicy::kDropCold,
            schedule::ShedPolicy::kDropHot}) {
        std::printf("%s\n", schedule::ShedPolicyName(policy));
      }
    }
    std::exit(0);
  }
  return flags;
}

}  // namespace chiller::bench
