// Shared harness for the figure/table reproduction benches.
#ifndef CHILLER_BENCH_BENCH_COMMON_H_
#define CHILLER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/occ.h"
#include "cc/replication.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "partition/chiller_partitioner.h"
#include "partition/hot_decorator.h"
#include "partition/metrics.h"
#include "partition/schism.h"
#include "workload/instacart.h"
#include "workload/tpcc/tpcc_workload.h"

namespace chiller::bench {

/// A fully wired simulated cluster + protocol + driver.
struct Env {
  std::unique_ptr<cc::Cluster> cluster;
  std::unique_ptr<partition::RecordPartitioner> owned_partitioner;
  const partition::RecordPartitioner* partitioner = nullptr;
  std::unique_ptr<cc::ReplicationManager> repl;
  std::unique_ptr<cc::Protocol> protocol;
  std::unique_ptr<cc::Driver> driver;
};

/// The protocol names MakeProtocol accepts, for usage messages.
inline const std::vector<std::string>& KnownProtocols() {
  static const std::vector<std::string> kNames = {"2pl", "occ", "chiller",
                                                  "chiller-plain"};
  return kNames;
}

/// Protocol factory. "chiller-plain" = Chiller partitioning with two-region
/// execution disabled (the re-ordering ablation). Unknown names return
/// InvalidArgument.
inline StatusOr<std::unique_ptr<cc::Protocol>> MakeProtocol(
    const std::string& name, cc::Cluster* cluster,
    const partition::RecordPartitioner* part, cc::ReplicationManager* repl) {
  if (name == "2pl") {
    return std::unique_ptr<cc::Protocol>(
        std::make_unique<cc::TwoPhaseLocking>(cluster, part, repl));
  }
  if (name == "occ") {
    return std::unique_ptr<cc::Protocol>(
        std::make_unique<cc::Occ>(cluster, part, repl));
  }
  if (name == "chiller") {
    return std::unique_ptr<cc::Protocol>(
        std::make_unique<core::ChillerProtocol>(cluster, part, repl));
  }
  if (name == "chiller-plain") {
    return std::unique_ptr<cc::Protocol>(std::make_unique<core::ChillerProtocol>(
        cluster, part, repl, /*enable_two_region=*/false));
  }
  std::string known;
  for (const std::string& n : KnownProtocols()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::InvalidArgument("unknown protocol '" + name +
                                 "' (known: " + known + ")");
}

/// MakeProtocol for bench mains: prints the error + usage and exits 1
/// instead of returning. Never aborts.
inline std::unique_ptr<cc::Protocol> MakeProtocolOrExit(
    const std::string& name, cc::Cluster* cluster,
    const partition::RecordPartitioner* part, cc::ReplicationManager* repl) {
  auto proto = MakeProtocol(name, cluster, part, repl);
  if (!proto.ok()) {
    std::fprintf(stderr, "%s\n", proto.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(proto).value();
}

/// TPC-C cluster: `warehouses` = nodes * engines_per_node, partitioned by
/// warehouse (the Figure 9/10 setup).
inline Env MakeTpccEnv(const std::string& proto, uint32_t nodes,
                       uint32_t engines_per_node,
                       workload::tpcc::TpccWorkload* workload,
                       uint32_t concurrency, uint64_t seed = 1) {
  namespace tpcc = workload::tpcc;
  Env env;
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = nodes,
                               .engines_per_node = engines_per_node,
                               .replication_degree = 2};
  cfg.schema = tpcc::Schema();
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  auto part = std::make_unique<tpcc::TpccPartitioner>(
      nodes * engines_per_node);
  tpcc::PopulateTpcc(
      nodes * engines_per_node,
      [&](const RecordId& rid, const storage::Record& rec) {
        env.cluster->LoadRecord(rid, rec, *part);
      },
      [&](const RecordId& rid, const storage::Record& rec) {
        env.cluster->LoadEverywhere(rid, rec);
      });
  env.partitioner = part.get();
  env.owned_partitioner = std::move(part);
  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  env.protocol = MakeProtocolOrExit(proto, env.cluster.get(),
                                    env.partitioner, env.repl.get());
  env.driver = std::make_unique<cc::Driver>(env.cluster.get(),
                                            env.protocol.get(), workload,
                                            concurrency, seed);
  return env;
}

/// Instacart cluster under a caller-supplied layout.
inline Env MakeInstacartEnv(const std::string& proto, uint32_t partitions,
                            workload::instacart::InstacartWorkload* workload,
                            const partition::RecordPartitioner* layout,
                            uint32_t concurrency, uint64_t seed = 1) {
  Env env;
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = partitions,
                               .engines_per_node = 1,
                               .replication_degree = 2};
  cfg.schema = workload::instacart::Schema();
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  workload->ForEachRecord(
      [&](const RecordId& rid, const storage::Record& rec) {
        env.cluster->LoadRecord(rid, rec, *layout);
      });
  env.partitioner = layout;
  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  env.protocol = MakeProtocolOrExit(proto, env.cluster.get(),
                                    env.partitioner, env.repl.get());
  env.driver = std::make_unique<cc::Driver>(env.cluster.get(),
                                            env.protocol.get(), workload,
                                            concurrency, seed);
  return env;
}

/// The three Instacart layouts of Figure 7/8, all exposing the same
/// hot-record set so the run-time decision is identical across layouts and
/// only placement differs.
struct InstacartLayouts {
  std::unique_ptr<partition::RecordPartitioner> hash_base;
  std::unique_ptr<partition::HotDecorator> hashing;
  partition::SchismPartitioner::Output schism_out;
  std::unique_ptr<partition::HotDecorator> schism;
  partition::ChillerPartitioner::Output chiller_out;
  std::vector<partition::TxnAccessTrace> traces;
  partition::StatsCollector stats;
};

inline InstacartLayouts BuildInstacartLayouts(
    workload::instacart::InstacartWorkload* workload, uint32_t k,
    size_t trace_txns, uint64_t seed = 7, double hot_threshold = 0.01) {
  InstacartLayouts out;
  Rng rng(seed);
  out.traces = workload->GenerateTrace(trace_txns, &rng);
  for (const auto& t : out.traces) out.stats.ObserveTrace(t);

  partition::ChillerPartitioner::Options copts;
  copts.k = k;
  copts.hot_threshold = hot_threshold;
  copts.epsilon = 0.1;
  // Balance record *accesses* per partition (Section 4.3's third load
  // metric): the skewed grocery workload overloads a popular partition
  // under a plain record-count balance.
  copts.metric = partition::LoadMetric::kAccessCount;
  copts.fallback_fn = workload::instacart::InstacartFallback;
  out.chiller_out = partition::ChillerPartitioner::Build(out.traces, copts);

  out.schism_out = partition::SchismPartitioner::Build(
      out.traces, {.k = k, .epsilon = 0.1,
                   .fallback_fn = workload::instacart::InstacartFallback});

  std::vector<RecordId> hot;
  for (const auto& [rid, pc] : out.chiller_out.hot_records) {
    (void)pc;
    hot.push_back(rid);
  }
  out.hash_base = std::make_unique<partition::HashPartitioner>(
      k, workload::instacart::InstacartFallback);
  out.hashing = std::make_unique<partition::HotDecorator>(out.hash_base.get(),
                                                          hot);
  out.schism = std::make_unique<partition::HotDecorator>(
      out.schism_out.partitioner.get(), hot);
  return out;
}

/// Prints a series row: label followed by one value per column.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values, const char* fmt) {
  std::printf("%-22s", label.c_str());
  for (double v : values) {
    std::printf("  ");
    std::printf(fmt, v);
  }
  std::printf("\n");
}

inline void PrintHeader(const std::string& label,
                        const std::vector<double>& columns) {
  std::printf("%-22s", label.c_str());
  for (double c : columns) std::printf("  %8g", c);
  std::printf("\n");
}

}  // namespace chiller::bench

#endif  // CHILLER_BENCH_BENCH_COMMON_H_
