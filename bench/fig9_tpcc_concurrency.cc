// Figure 9: standard full TPC-C mix on 8 nodes, one warehouse per engine,
// identical by-warehouse partitioning for all systems; sweep the number of
// concurrent transactions per warehouse.
//
//  (a) throughput — paper shape: 2PL == Chiller at 1 open txn; only
//      Chiller rises with concurrency (peaking around 4, then CPU-bound);
//      OCC is the worst throughout.
//  (b) abort rate — 2PL and OCC climb steeply; Chiller stays low.
//  (c) 2PL per-class abort rates — Payment approaches 100% (starved by
//      NewOrder's shared warehouse locks), NewOrder moderate, StockLevel
//      lowest.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace tpcc = workload::tpcc;

struct Point {
  double throughput_m;  // M txns/sec
  double abort_rate;
  double abort_new_order;
  double abort_payment;
  double abort_stock_level;
};

Point RunOne(const BenchFlags& flags, const std::string& proto,
             uint32_t concurrency, BenchReport* report) {
  tpcc::TpccWorkload workload(tpcc::TpccWorkload::Options{
      .num_warehouses = flags.nodes * flags.engines});
  Env env = MakeTpccEnv(proto, flags.nodes, flags.engines, &workload,
                        concurrency, /*seed=*/flags.seed + concurrency);
  auto stats = env.driver->Run(
      static_cast<SimTime>(flags.warmup_ms * kMillisecond),
      static_cast<SimTime>(flags.duration_ms * kMillisecond));

  Json params = Json::MakeObject();
  params["concurrency"] = concurrency;
  report->AddRun(proto, std::move(params), stats);

  Point p;
  p.throughput_m = stats.Throughput() / 1e6;
  p.abort_rate = stats.AbortRate();
  p.abort_new_order = stats.classes[tpcc::kNewOrderTxn].AbortRate();
  p.abort_payment = stats.classes[tpcc::kPaymentTxn].AbortRate();
  p.abort_stock_level = stats.classes[tpcc::kStockLevelTxn].AbortRate();
  return p;
}

void Main(const BenchFlags& flags) {
  std::printf(
      "Figure 9 — full TPC-C, %u nodes x %u engines (1 warehouse each),\n"
      "same by-warehouse partitioning for every protocol; sweeping\n"
      "concurrent transactions per warehouse.\n\n",
      flags.nodes, flags.engines);

  BenchReport report("fig9");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("warehouses", flags.nodes * flags.engines);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  std::vector<double> conc = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<Point> twopl, occ, chiller;
  for (double cd : conc) {
    const uint32_t c = static_cast<uint32_t>(cd);
    twopl.push_back(RunOne(flags, "2pl", c, &report));
    occ.push_back(RunOne(flags, "occ", c, &report));
    chiller.push_back(RunOne(flags, "chiller", c, &report));
    std::fprintf(stderr, "  [fig9] concurrency=%u done\n", c);
  }

  auto series = [&](const std::vector<Point>& pts, auto field) {
    std::vector<double> out;
    for (const Point& p : pts) out.push_back(field(p));
    return out;
  };

  std::printf("(a) Throughput (M txns/sec)\n");
  PrintHeader("# conc txns/warehouse", conc);
  PrintRow("2PL", series(twopl, [](auto& p) { return p.throughput_m; }),
           "%8.3f");
  PrintRow("OCC", series(occ, [](auto& p) { return p.throughput_m; }),
           "%8.3f");
  PrintRow("Chiller",
           series(chiller, [](auto& p) { return p.throughput_m; }), "%8.3f");

  std::printf("\n(b) Abort rate\n");
  PrintHeader("# conc txns/warehouse", conc);
  PrintRow("2PL", series(twopl, [](auto& p) { return p.abort_rate; }),
           "%8.3f");
  PrintRow("OCC", series(occ, [](auto& p) { return p.abort_rate; }), "%8.3f");
  PrintRow("Chiller", series(chiller, [](auto& p) { return p.abort_rate; }),
           "%8.3f");

  std::printf("\n(c) Abort rate breakdown for 2PL\n");
  PrintHeader("# conc txns/warehouse", conc);
  PrintRow("New-order",
           series(twopl, [](auto& p) { return p.abort_new_order; }), "%8.3f");
  PrintRow("Payment", series(twopl, [](auto& p) { return p.abort_payment; }),
           "%8.3f");
  PrintRow("Stock-level",
           series(twopl, [](auto& p) { return p.abort_stock_level; }),
           "%8.3f");

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig9"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig9"));
}
