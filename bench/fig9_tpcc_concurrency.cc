// Figure 9: standard full TPC-C mix on 8 nodes, one warehouse per engine,
// identical by-warehouse partitioning for all systems; sweep the number of
// concurrent transactions per warehouse.
//
//  (a) throughput — paper shape: 2PL == Chiller at 1 open txn; only
//      Chiller rises with concurrency (peaking around 4, then CPU-bound);
//      OCC is the worst throughout.
//  (b) abort rate — 2PL and OCC climb steeply; Chiller stays low.
//  (c) 2PL per-class abort rates — Payment approaches 100% (starved by
//      NewOrder's shared warehouse locks), NewOrder moderate, StockLevel
//      lowest.
#include <chrono>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"
#include "workload/tpcc/tpcc_workload.h"

namespace chiller::bench {
namespace {

namespace tpcc = workload::tpcc;

struct Point {
  double throughput_m;  // M txns/sec
  double abort_rate;
  double abort_new_order;
  double abort_payment;
  double abort_stock_level;
};

void Main(const BenchFlags& flags) {
  std::printf(
      "Figure 9 — full TPC-C, %u nodes x %u engines (1 warehouse each),\n"
      "same by-warehouse partitioning for every protocol; sweeping\n"
      "concurrent transactions per warehouse.\n\n",
      flags.nodes, flags.engines);

  BenchReport report("fig9");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("warehouses", flags.nodes * flags.engines);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  const std::vector<double> conc = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::string> protocols = {"2pl", "occ", "chiller"};

  std::vector<runner::ScenarioSpec> specs;
  for (double cd : conc) {
    const uint32_t c = static_cast<uint32_t>(cd);
    for (const std::string& proto : protocols) {
      runner::ScenarioSpec spec;
      spec.label = proto;
      spec.workload = "tpcc";
      spec.protocol = proto;
      spec.nodes = flags.nodes;
      spec.engines_per_node = flags.engines;
      spec.concurrency = c;
      spec.seed = flags.seed + c;
      spec.warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
      spec.measure = static_cast<SimTime>(flags.duration_ms * kMillisecond);
      ApplyLoadModelFlags(flags, &spec);
      specs.push_back(std::move(spec));
    }
  }

  for (auto& spec : specs) {
    spec.footprint_hint = runner::EstimateFootprint(spec);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "fig9");
  size_t completed = 0;  // progress callbacks are serialized by the executor
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr, "  [fig9] %s concurrency=%u %s (%zu/%zu)\n",
                     specs[i].protocol.c_str(), specs[i].concurrency,
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  std::vector<Point> twopl, occ, chiller;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "fig9: scenario %zu failed: %s\n", i,
                   results[i].status().ToString().c_str());
      std::exit(1);
    }
    const runner::ScenarioResult& r = results[i].value();
    const cc::RunStats& stats = r.stats;

    Json params = Json::MakeObject();
    params["concurrency"] = r.spec.concurrency;
    report.AddRun(r.spec.protocol, std::move(params), stats);

    Point p;
    p.throughput_m = stats.Throughput() / 1e6;
    p.abort_rate = stats.AbortRate();
    p.abort_new_order = stats.ClassAbortRate(tpcc::kNewOrderTxn);
    p.abort_payment = stats.ClassAbortRate(tpcc::kPaymentTxn);
    p.abort_stock_level = stats.ClassAbortRate(tpcc::kStockLevelTxn);
    if (r.spec.protocol == "2pl") twopl.push_back(p);
    if (r.spec.protocol == "occ") occ.push_back(p);
    if (r.spec.protocol == "chiller") chiller.push_back(p);
  }

  auto series = [&](const std::vector<Point>& pts, auto field) {
    std::vector<double> out;
    for (const Point& p : pts) out.push_back(field(p));
    return out;
  };

  std::printf("(a) Throughput (M txns/sec)\n");
  PrintHeader("# conc txns/warehouse", conc);
  PrintRow("2PL", series(twopl, [](auto& p) { return p.throughput_m; }),
           "%8.3f");
  PrintRow("OCC", series(occ, [](auto& p) { return p.throughput_m; }),
           "%8.3f");
  PrintRow("Chiller",
           series(chiller, [](auto& p) { return p.throughput_m; }), "%8.3f");

  std::printf("\n(b) Abort rate\n");
  PrintHeader("# conc txns/warehouse", conc);
  PrintRow("2PL", series(twopl, [](auto& p) { return p.abort_rate; }),
           "%8.3f");
  PrintRow("OCC", series(occ, [](auto& p) { return p.abort_rate; }), "%8.3f");
  PrintRow("Chiller", series(chiller, [](auto& p) { return p.abort_rate; }),
           "%8.3f");

  std::printf("\n(c) Abort rate breakdown for 2PL\n");
  PrintHeader("# conc txns/warehouse", conc);
  PrintRow("New-order",
           series(twopl, [](auto& p) { return p.abort_new_order; }), "%8.3f");
  PrintRow("Payment", series(twopl, [](auto& p) { return p.abort_payment; }),
           "%8.3f");
  PrintRow("Stock-level",
           series(twopl, [](auto& p) { return p.abort_stock_level; }),
           "%8.3f");

  std::printf("\nsweep: %zu scenarios in %.1f s wall-clock (--jobs %u, --shards %u)\n",
              specs.size(), sweep_ms / 1000.0, executor.jobs(),
              flags.shards);

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig9"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig9"));
}
