// Machine-readable benchmark reports.
//
// Every fig/ablation bench accumulates one BenchReport and writes it as
// BENCH_<name>.json next to its human-readable table. The JSON shape is
// uniform across benches so tooling can diff runs:
//
//   {
//     "bench": "fig9",
//     "config": { ...fixed parameters of the run... },
//     "results": [
//       {
//         "protocol": "chiller",
//         "params": {"concurrency": 4},          // the swept x-axis point
//         "throughput_tps": 1.1e6,
//         "abort_rate": 0.02,
//         "latency_p50_ns": 12000,
//         "latency_p99_ns": 91000,
//         ...
//       }, ...
//     ]
//   }
//
// Runs driven by an open load model (see cc/load_model.h) additionally
// carry "admitted", "shed", "shed_rate", and "queue_delay_{p50,p99,mean}_ns"
// per row; closed-loop rows omit them so historical reports stay stable.
#ifndef CHILLER_BENCH_BENCH_REPORT_H_
#define CHILLER_BENCH_BENCH_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "common/json.h"
#include "common/status.h"

namespace chiller::bench {

/// Prints a human-readable series row: label followed by one value per
/// column, formatted with `fmt` (e.g. "%8.3f").
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values, const char* fmt) {
  std::printf("%-22s", label.c_str());
  for (double v : values) {
    std::printf("  ");
    std::printf(fmt, v);
  }
  std::printf("\n");
}

/// Prints the x-axis header row matching PrintRow's layout.
inline void PrintHeader(const std::string& label,
                        const std::vector<double>& columns) {
  std::printf("%-22s", label.c_str());
  for (double c : columns) std::printf("  %8g", c);
  std::printf("\n");
}

/// Flattens a measurement window into the uniform result-row shape:
/// throughput, abort rate, distributed ratio, commit/abort counters, and
/// p50/p99/mean latency merged across transaction classes. `protocol` and
/// `params` identify the run; `params` holds the swept parameters (e.g.
/// {"concurrency": 4} or {"partitions": 8, "layout": "schism"}).
Json ResultRow(const std::string& protocol, Json params,
               const cc::RunStats& stats);

class BenchReport {
 public:
  /// `name` is the bench's short name ("fig9"); it becomes both the
  /// default file name (BENCH_fig9.json) and the "bench" field.
  explicit BenchReport(std::string name);

  const std::string& name() const { return name_; }

  /// Fixed parameters of the whole run (nodes, engines, durations, ...).
  void SetConfig(const std::string& key, Json value);

  /// Appends one result row (usually from ResultRow()).
  void Add(Json row);

  /// Convenience: ResultRow() + Add().
  void AddRun(const std::string& protocol, Json params,
              const cc::RunStats& stats);

  Json ToJson() const;

  /// Writes ToJson() pretty-printed to `path`.
  Status WriteFile(const std::string& path) const;

  /// Standard epilogue for bench mains: no-op when `emit` is false,
  /// otherwise write to `path` and log where the report went (or complain
  /// to stderr on failure, without aborting the bench).
  void MaybeWrite(bool emit, const std::string& path) const;

 private:
  std::string name_;
  Json config_ = Json::MakeObject();
  Json results_ = Json::MakeArray();
};

}  // namespace chiller::bench

#endif  // CHILLER_BENCH_BENCH_REPORT_H_
