// Shared command-line interface for the figure/ablation benches.
//
// Every bench accepts the same flag set so runs are comparable and
// scriptable:
//
//   --protocol=NAME       a registered protocol (see --list-protocols)
//   --nodes=N             cluster nodes
//   --engines=N           engines (cores/partitions) per node
//   --concurrency=N       open transactions per engine
//   --warmup-ms=N         simulated warmup before measuring
//   --duration-ms=N       simulated measurement window
//   --theta=F             Zipf skew for workloads that take one
//   --seed=N              base RNG seed
//   --load-model=NAME     closed | open | batched (see cc/load_model.h)
//   --offered-tps=F       open loop: cluster-wide offered load, txns/sec
//   --arrival=NAME        open loop: poisson | uniform interarrivals
//   --queue-cap=N         open loop: per-engine admission queue bound
//   --batch-size=N        batched: transactions admitted per engine batch
//   --scheduler=NAME      admission scheduler (see --list-schedulers)
//   --sched-classes=N     conflict-class universe size (0 = auto)
//   --shed-policy=NAME    scheduled-queue overflow: drop-new | drop-cold |
//                         drop-hot
//   --jobs=N              sweep worker threads (0 = all hardware threads)
//   --shards=N            simulator shards per scenario (threads inside one
//                         simulation; results byte-identical for any N)
//   --mem-budget-mb=N     cap summed footprint of concurrently-loaded
//                         scenarios (0 = unlimited)
//   --trace-out=FILE      write a Chrome trace-event JSON of the sampled
//                         transactions (load in Perfetto / chrome://tracing)
//   --trace-sample-every=N trace every Nth logical transaction per engine
//                         (0 = off; --trace-out with 0 implies 1)
//   --json=PATH           where to write the machine-readable report
//                         (default BENCH_<name>.json in the cwd)
//   --no-json             disable the JSON report
//   --list-protocols      print the protocol registry, one per line, exit 0
//   --list-workloads      print the workload registry, one per line, exit 0
//   --list-schedulers     print the scheduler registry, one per line, exit 0
//   --list-shed-policies  print the shed policies, one per line, exit 0
//   --help                print usage and exit 0
//
// Benches sweep their own x-axis (concurrency, partitions, % distributed);
// flags set the fixed parameters of the sweep. A bench reads only the
// fields it uses.
#ifndef CHILLER_BENCH_BENCH_FLAGS_H_
#define CHILLER_BENCH_BENCH_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.h"
#include "runner/scenario.h"
#include "runner/sweep.h"

namespace chiller::bench {

struct BenchFlags {
  std::string protocol = "chiller";
  uint32_t nodes = 8;
  uint32_t engines = 10;
  uint32_t concurrency = 4;
  double warmup_ms = 3.0;
  double duration_ms = 15.0;
  double theta = 0.99;
  uint64_t seed = 1;
  /// Load model for every scenario the bench sweeps (default: the paper's
  /// closed loop, which preserves all historical numbers). See
  /// ApplyLoadModelFlags for how these land on a ScenarioSpec.
  std::string load_model = "closed";
  double offered_tps = 0.0;       ///< open loop: cluster-wide offered load
  std::string arrival = "poisson";  ///< open loop: poisson | uniform
  uint32_t queue_cap = 64;        ///< open loop: admission queue per engine
  uint32_t batch_size = 8;        ///< batched: admissions per engine batch
  /// Admission scheduler for every scenario the bench sweeps (the default
  /// fifo is the passthrough: byte-identical to the pre-scheduler code).
  /// See schedule/scheduler.h and --list-schedulers.
  std::string scheduler = "fifo";
  uint32_t sched_classes = 0;     ///< conflict-class universe (0 = auto)
  /// Scheduled-queue overflow policy: drop-new | drop-cold | drop-hot.
  std::string shed_policy = "drop-new";
  /// Sweep worker threads; 0 = one per hardware thread. Results are
  /// byte-identical for every value (see runner::SweepExecutor).
  uint32_t jobs = 1;
  /// Simulator shards per scenario: real threads splitting one simulated
  /// cluster's event space by node (see sim::ShardedSimulator). Orthogonal
  /// to --jobs (threads across scenarios); results are byte-identical for
  /// every value, only wall-clock changes.
  uint32_t shards = 1;
  /// Memory budget for concurrently-loaded scenarios, MB; 0 = unlimited.
  /// High --jobs multiplies peak RSS (one loaded cluster per worker); the
  /// sweep keeps the summed footprint hints under this cap.
  uint64_t mem_budget_mb = 0;
  /// Chrome trace-event output: path of the merged trace across every
  /// scenario the bench sweeps (empty = no trace). Tracing replays the
  /// same domain events the stats come from, so enabling it never changes
  /// any result byte and the trace itself is byte-identical for any
  /// --jobs / --shards combination.
  std::string trace_out;
  /// Per-engine sampling stride for the tracer: every Nth logical
  /// transaction an engine issues is traced (0 = tracing off). When
  /// --trace-out is given and this is 0, it defaults to 1 (trace all).
  uint32_t trace_sample_every = 0;

  /// mem_budget_mb in bytes (what SweepExecutor consumes).
  uint64_t MemBudgetBytes() const { return mem_budget_mb * (1ull << 20); }
  std::string json_path;  ///< empty = BENCH_<bench name>.json
  bool emit_json = true;
  bool help = false;      ///< --help was given; caller prints usage, exits 0
  bool list_protocols = false;  ///< print registry + exit (handled by OrExit)
  bool list_workloads = false;  ///< print registry + exit (handled by OrExit)
  bool list_schedulers = false; ///< print registry + exit (handled by OrExit)
  bool list_shed_policies = false;  ///< print policies + exit (via OrExit)

  /// The --json override, or the default path for `bench_name`.
  std::string JsonPathFor(const std::string& bench_name) const {
    return json_path.empty() ? "BENCH_" + bench_name + ".json" : json_path;
  }
};

/// Copies the shared load-model flags onto one scenario spec. Benches call
/// this per grid point so any sweep can be re-run under open-loop or
/// batched admission without touching the bench; the "closed" default
/// leaves historical runs byte-identical.
inline void ApplyLoadModelFlags(const BenchFlags& flags,
                                runner::ScenarioSpec* spec) {
  spec->load_model = flags.load_model;
  spec->offered_tps = flags.offered_tps;
  spec->arrival = flags.arrival;
  spec->queue_cap = flags.queue_cap;
  spec->batch_size = flags.batch_size;
  // The admission-scheduler knobs ride along: they shape the same
  // arrival-to-engine stage the load model owns.
  spec->scheduler = flags.scheduler;
  spec->sched_classes = flags.sched_classes;
  spec->shed_policy = flags.shed_policy;
  spec->shards = flags.shards;
  spec->trace_sample_every = flags.trace_sample_every;
}

/// Standard SweepExecutor wiring from the shared flags: worker count, the
/// memory-budget gate, and the footprint-calibration cache persisted next
/// to the bench's JSON report (so a repeat invocation starts from the
/// EWMA factor the last run learned). Scheduling-only: results never
/// depend on any of it.
inline runner::SweepExecutor MakeSweepExecutor(
    const BenchFlags& flags, const std::string& bench_name) {
  runner::SweepExecutor executor(flags.jobs);
  executor.set_mem_budget_bytes(flags.MemBudgetBytes());
  executor.set_calibration_cache(
      runner::FootprintCalibrationCache::PathNextTo(
          flags.JsonPathFor(bench_name)));
  executor.set_trace_out(flags.trace_out);
  return executor;
}

/// Guard for benches that never drive transactions through a load model
/// (pure layout/metric analysis): refuses non-default load-model flags
/// instead of silently ignoring them.
inline void RejectLoadModelFlags(const BenchFlags& flags,
                                 const std::string& bench_name) {
  const BenchFlags defaults;
  if (flags.load_model == defaults.load_model &&
      flags.offered_tps == defaults.offered_tps &&
      flags.arrival == defaults.arrival &&
      flags.queue_cap == defaults.queue_cap &&
      flags.batch_size == defaults.batch_size &&
      flags.scheduler == defaults.scheduler &&
      flags.sched_classes == defaults.sched_classes &&
      flags.shed_policy == defaults.shed_policy) {
    return;
  }
  std::fprintf(stderr,
               "%s: this bench does not drive transactions through a load "
               "model; --load-model / --offered-tps / --arrival / "
               "--queue-cap / --batch-size / --scheduler / --sched-classes "
               "/ --shed-policy have no effect here\n",
               bench_name.c_str());
  std::exit(1);
}

/// Usage text for `bench_name`, listing every flag and its default.
/// `defaults` must be the same bench-specific defaults passed to parsing,
/// so --help reports what the bench actually does when a flag is absent.
std::string UsageString(const std::string& bench_name,
                        const BenchFlags& defaults = BenchFlags{});

/// Parses argv into `out` (which keeps its defaults for absent flags).
/// Returns InvalidArgument on an unknown flag or a malformed value; the
/// message names the offending argument. `--help` sets out->help and
/// returns OK without parsing further.
Status ParseBenchFlags(int argc, const char* const* argv, BenchFlags* out);

/// Standard prologue used by every bench main: parse flags, and on --help
/// or a parse error print usage to the right stream and exit (0 for
/// --help, 1 for errors). `defaults` carries bench-specific defaults
/// (e.g. fig7 measures 30 ms where the shared default is 15).
BenchFlags ParseBenchFlagsOrExit(int argc, const char* const* argv,
                                 const std::string& bench_name,
                                 BenchFlags defaults = BenchFlags{});

}  // namespace chiller::bench

#endif  // CHILLER_BENCH_BENCH_FLAGS_H_
