// Online repartitioning (paper Section 4.1 end to end): ycsb traffic
// starts on a contention-oblivious hash layout, a sampling StatsCollector
// observes the commit stream live, and a replan + migrate phase pair swaps
// in a Chiller layout mid-run. Sweeps the sample rate (the paper argues
// 0.001 suffices) and reports, per rate:
//
//   hash     — the same spec with the adaptive phases removed: the layout
//              stays hash-partitioned for the whole run (the floor);
//   adaptive — sample -> replan -> migrate -> re-warm -> measure: what the
//              converged layout is worth after paying the migration pause.
//
// The paper's claim reproduced here: the adaptive run's measured window
// must beat the static hash layout on a contended workload at every sample
// rate, with the gap opening once the sample covers the contended head of
// the key distribution. (Absolute sampled-txn counts drive layout quality;
// the paper's 0.001 suffices because real runs observe minutes of traffic,
// where these simulated windows observe milliseconds.)
#include <chrono>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

void Main(const BenchFlags& flags) {
  std::printf(
      "Adaptive relayout — ycsb (theta=%.2f) on %u nodes x %u engines,\n"
      "%s protocol; hash layout vs live sample -> replan -> migrate,\n"
      "sweeping the stats-service sample rate.\n\n",
      flags.theta, flags.nodes, flags.engines, flags.protocol.c_str());

  BenchReport report("adaptive");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("protocol", flags.protocol);
  report.SetConfig("theta", flags.theta);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  const std::vector<double> sample_rates = {0.001, 0.01, 0.1, 1.0};

  const SimTime warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
  const SimTime measure =
      static_cast<SimTime>(flags.duration_ms * kMillisecond);
  // The sample window doubles as extra warmup for the static baseline, so
  // both modes measure after the same total simulated time.
  const SimTime sample = 2 * warmup + measure;
  const SimTime resettle = warmup;

  auto base_spec = [&] {
    runner::ScenarioSpec spec;
    spec.workload = "adaptive";
    spec.protocol = flags.protocol;
    spec.nodes = flags.nodes;
    spec.engines_per_node = flags.engines;
    spec.concurrency = flags.concurrency;
    spec.seed = flags.seed;
    ApplyLoadModelFlags(flags, &spec);
    spec.options.Set("theta", flags.theta);
    spec.options.Set("keys_per_partition", 10000);
    return spec;
  };

  // One adaptive scenario per sample rate, plus a single static-hash
  // floor: the baseline's phase plan does not depend on the rate, so one
  // simulation serves every table column.
  std::vector<runner::ScenarioSpec> specs;
  for (double rate : sample_rates) {
    runner::ScenarioSpec adaptive = base_spec();
    adaptive.label = "adaptive";
    adaptive.phases = {
        runner::Phase::Warmup(warmup),
        runner::Phase::Sample(sample, rate),
        runner::Phase::Replan(),
        runner::Phase::Migrate(),
        runner::Phase::Warmup(resettle),
        runner::Phase::Measure(measure),
    };
    specs.push_back(adaptive);
  }
  runner::ScenarioSpec hash = base_spec();
  hash.label = "hash";
  hash.phases = {
      runner::Phase::Warmup(warmup + sample + resettle),
      runner::Phase::Measure(measure),
  };
  specs.push_back(hash);
  for (auto& spec : specs) {
    spec.footprint_hint = runner::EstimateFootprint(spec);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "adaptive");
  size_t completed = 0;  // progress callbacks are serialized by the executor
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        char point[32] = "hash";
        if (i < sample_rates.size()) {
          std::snprintf(point, sizeof(point), "adaptive rate=%g",
                        sample_rates[i]);
        }
        std::fprintf(stderr, "  [adaptive] %s %s (%zu/%zu)\n", point,
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  for (const auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "adaptive: scenario failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
  }
  const runner::ScenarioResult& hash_result = results.back().value();

  auto add_row = [&](const runner::ScenarioResult& r, double rate) {
    Json params = Json::MakeObject();
    params["mode"] = r.spec.label;
    params["sample_rate"] = rate;
    Json row = ResultRow(flags.protocol, std::move(params), r.stats);
    row["sampled_txns"] = r.adaptive.sampled_txns;
    row["hot_records"] = static_cast<uint64_t>(r.adaptive.hot_records);
    row["lookup_entries"] = static_cast<uint64_t>(r.adaptive.lookup_entries);
    row["moved_records"] = r.adaptive.migration.moved_records;
    row["moved_bytes"] = r.adaptive.migration.moved_bytes;
    row["migration_us"] =
        static_cast<double>(r.adaptive.migration.sim_time) / 1000.0;
    report.Add(std::move(row));
  };

  std::vector<double> hash_tput, adaptive_tput, moved, sampled;
  for (size_t i = 0; i < sample_rates.size(); ++i) {
    const runner::ScenarioResult& r = results[i].value();
    add_row(r, sample_rates[i]);
    add_row(hash_result, sample_rates[i]);  // the floor, per table column
    adaptive_tput.push_back(r.stats.Throughput() / 1e6);
    moved.push_back(static_cast<double>(r.adaptive.migration.moved_records));
    sampled.push_back(static_cast<double>(r.adaptive.sampled_txns));
    hash_tput.push_back(hash_result.stats.Throughput() / 1e6);
  }

  std::printf("Throughput (M txns/sec) vs stats-service sample rate\n");
  PrintHeader("sample rate", sample_rates);
  PrintRow("hash (static)", hash_tput, "%8.3f");
  PrintRow("adaptive (relayout)", adaptive_tput, "%8.3f");
  std::printf("\nAdaptive-loop accounting\n");
  PrintHeader("sample rate", sample_rates);
  PrintRow("sampled txns", sampled, "%8.0f");
  PrintRow("records moved", moved, "%8.0f");

  std::printf("\nsweep: %zu scenarios in %.1f s wall-clock (--jobs %u, --shards %u)\n",
              specs.size(), sweep_ms / 1000.0, executor.jobs(),
              flags.shards);

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("adaptive"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.9;  // contended: the regime the adaptive loop targets
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "adaptive", defaults));
}
