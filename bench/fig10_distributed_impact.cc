// Figure 10: impact of the fraction of distributed transactions.
// TPC-C restricted to NewOrder + Payment at 50/50; the probability that a
// transaction crosses warehouses is swept from 0 to 100%.
//
// Paper expectation: every baseline degrades steeply (especially with 5
// open transactions, where longer lock spans amplify existing conflicts);
// Chiller is highest and degrades < 20% end to end.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace tpcc = workload::tpcc;

double RunOne(const BenchFlags& flags, const std::string& proto,
              uint32_t concurrency, double pct, BenchReport* report) {
  tpcc::TpccWorkload::Options wopts;
  wopts.num_warehouses = flags.nodes * flags.engines;
  wopts.pct_new_order = 50;
  wopts.pct_payment = 50;
  wopts.pct_order_status = 0;
  wopts.pct_delivery = 0;
  wopts.pct_stock_level = 0;
  wopts.remote_new_order_prob = pct / 100.0;
  wopts.remote_payment_prob = pct / 100.0;
  tpcc::TpccWorkload workload(wopts);
  Env env = MakeTpccEnv(proto, flags.nodes, flags.engines, &workload,
                        concurrency,
                        /*seed=*/flags.seed + static_cast<uint64_t>(pct));
  auto stats = env.driver->Run(
      static_cast<SimTime>(flags.warmup_ms * kMillisecond),
      static_cast<SimTime>(flags.duration_ms * kMillisecond));

  Json params = Json::MakeObject();
  params["pct_distributed"] = pct;
  params["concurrency"] = concurrency;
  report->AddRun(proto, std::move(params), stats);
  return stats.Throughput() / 1e6;
}

void Main(const BenchFlags& flags) {
  std::printf(
      "Figure 10 — throughput (M txns/sec) vs %% distributed transactions\n"
      "(TPC-C NewOrder+Payment 50/50, %u warehouses).\n"
      "paper shape: Chiller best, degrades < 20%%; 2PL/OCC with 5 open\n"
      "txns collapse as distribution grows.\n\n",
      flags.nodes * flags.engines);

  BenchReport report("fig10");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  std::vector<double> pcts = {0, 20, 40, 60, 80, 100};
  std::vector<double> twopl1, occ1, twopl5, occ5, chiller5;
  for (double pct : pcts) {
    twopl1.push_back(RunOne(flags, "2pl", 1, pct, &report));
    occ1.push_back(RunOne(flags, "occ", 1, pct, &report));
    twopl5.push_back(RunOne(flags, "2pl", 5, pct, &report));
    occ5.push_back(RunOne(flags, "occ", 5, pct, &report));
    chiller5.push_back(RunOne(flags, "chiller", 5, pct, &report));
    std::fprintf(stderr, "  [fig10] %.0f%% distributed done\n", pct);
  }

  PrintHeader("% distributed txns", pcts);
  PrintRow("2PL (1 txn)", twopl1, "%8.3f");
  PrintRow("OCC (1 txn)", occ1, "%8.3f");
  PrintRow("2PL (5 txns)", twopl5, "%8.3f");
  PrintRow("OCC (5 txns)", occ5, "%8.3f");
  PrintRow("Chiller", chiller5, "%8.3f");

  std::printf("\nChiller degradation 0%% -> 100%%: %.1f%% (paper: <20%%)\n",
              100.0 * (1.0 - chiller5.back() / chiller5.front()));

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig10"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.duration_ms = 12.0;
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig10", defaults));
}
