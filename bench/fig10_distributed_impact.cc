// Figure 10: impact of the fraction of distributed transactions.
// TPC-C restricted to NewOrder + Payment at 50/50; the probability that a
// transaction crosses warehouses is swept from 0 to 100%.
//
// Paper expectation: every baseline degrades steeply (especially with 5
// open transactions, where longer lock spans amplify existing conflicts);
// Chiller is highest and degrades < 20% end to end.
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

struct Series {
  const char* proto;
  uint32_t concurrency;
};

void Main(const BenchFlags& flags) {
  std::printf(
      "Figure 10 — throughput (M txns/sec) vs %% distributed transactions\n"
      "(TPC-C NewOrder+Payment 50/50, %u warehouses).\n"
      "paper shape: Chiller best, degrades < 20%%; 2PL/OCC with 5 open\n"
      "txns collapse as distribution grows.\n\n",
      flags.nodes * flags.engines);

  BenchReport report("fig10");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  const std::vector<double> pcts = {0, 20, 40, 60, 80, 100};
  const std::vector<Series> series = {{"2pl", 1},
                                      {"occ", 1},
                                      {"2pl", 5},
                                      {"occ", 5},
                                      {"chiller", 5}};

  std::vector<runner::ScenarioSpec> specs;
  for (double pct : pcts) {
    for (const Series& s : series) {
      runner::ScenarioSpec spec;
      spec.workload = "tpcc";
      spec.protocol = s.proto;
      spec.nodes = flags.nodes;
      spec.engines_per_node = flags.engines;
      spec.concurrency = s.concurrency;
      spec.seed = flags.seed + static_cast<uint64_t>(pct);
      spec.warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
      spec.measure = static_cast<SimTime>(flags.duration_ms * kMillisecond);
      ApplyLoadModelFlags(flags, &spec);
      spec.options.Set("pct_new_order", 50);
      spec.options.Set("pct_payment", 50);
      spec.options.Set("pct_order_status", 0);
      spec.options.Set("pct_delivery", 0);
      spec.options.Set("pct_stock_level", 0);
      spec.options.Set("remote_new_order_prob", pct / 100.0);
      spec.options.Set("remote_payment_prob", pct / 100.0);
      specs.push_back(std::move(spec));
    }
  }

  for (auto& spec : specs) {
    spec.footprint_hint = runner::EstimateFootprint(spec);
  }
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "fig10");
  size_t completed = 0;  // progress callbacks are serialized by the executor
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr,
                     "  [fig10] %s conc=%u %.0f%% distributed %s (%zu/%zu)\n",
                     specs[i].protocol.c_str(), specs[i].concurrency,
                     pcts[i / series.size()],
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });

  // One throughput series per (protocol, concurrency) pair, in pct order.
  std::vector<std::vector<double>> tputs(series.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "fig10: scenario %zu failed: %s\n", i,
                   results[i].status().ToString().c_str());
      std::exit(1);
    }
    const runner::ScenarioResult& r = results[i].value();
    const double pct = pcts[i / series.size()];

    Json params = Json::MakeObject();
    params["pct_distributed"] = pct;
    params["concurrency"] = r.spec.concurrency;
    report.AddRun(r.spec.protocol, std::move(params), r.stats);
    tputs[i % series.size()].push_back(r.stats.Throughput() / 1e6);
  }

  PrintHeader("% distributed txns", pcts);
  PrintRow("2PL (1 txn)", tputs[0], "%8.3f");
  PrintRow("OCC (1 txn)", tputs[1], "%8.3f");
  PrintRow("2PL (5 txns)", tputs[2], "%8.3f");
  PrintRow("OCC (5 txns)", tputs[3], "%8.3f");
  PrintRow("Chiller", tputs[4], "%8.3f");

  const std::vector<double>& chiller5 = tputs[4];
  std::printf("\nChiller degradation 0%% -> 100%%: %.1f%% (paper: <20%%)\n",
              100.0 * (1.0 - chiller5.back() / chiller5.front()));

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig10"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.duration_ms = 12.0;
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig10", defaults));
}
