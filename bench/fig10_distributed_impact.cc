// Figure 10: impact of the fraction of distributed transactions.
// TPC-C restricted to NewOrder + Payment at 50/50; the probability that a
// transaction crosses warehouses is swept from 0 to 100%.
//
// Paper expectation: every baseline degrades steeply (especially with 5
// open transactions, where longer lock spans amplify existing conflicts);
// Chiller is highest and degrades < 20% end to end.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace tpcc = workload::tpcc;

constexpr uint32_t kNodes = 8;
constexpr uint32_t kEnginesPerNode = 10;
constexpr SimTime kWarmup = 3 * kMillisecond;
constexpr SimTime kMeasure = 12 * kMillisecond;

double RunOne(const std::string& proto, uint32_t concurrency, double pct) {
  tpcc::TpccWorkload::Options wopts;
  wopts.num_warehouses = kNodes * kEnginesPerNode;
  wopts.pct_new_order = 50;
  wopts.pct_payment = 50;
  wopts.pct_order_status = 0;
  wopts.pct_delivery = 0;
  wopts.pct_stock_level = 0;
  wopts.remote_new_order_prob = pct / 100.0;
  wopts.remote_payment_prob = pct / 100.0;
  tpcc::TpccWorkload workload(wopts);
  Env env = MakeTpccEnv(proto, kNodes, kEnginesPerNode, &workload,
                        concurrency, /*seed=*/static_cast<uint64_t>(pct) + 1);
  auto stats = env.driver->Run(kWarmup, kMeasure);
  return stats.Throughput() / 1e6;
}

void Main() {
  std::printf(
      "Figure 10 — throughput (M txns/sec) vs %% distributed transactions\n"
      "(TPC-C NewOrder+Payment 50/50, %u warehouses).\n"
      "paper shape: Chiller best, degrades < 20%%; 2PL/OCC with 5 open\n"
      "txns collapse as distribution grows.\n\n",
      kNodes * kEnginesPerNode);

  std::vector<double> pcts = {0, 20, 40, 60, 80, 100};
  std::vector<double> twopl1, occ1, twopl5, occ5, chiller5;
  for (double pct : pcts) {
    twopl1.push_back(RunOne("2pl", 1, pct));
    occ1.push_back(RunOne("occ", 1, pct));
    twopl5.push_back(RunOne("2pl", 5, pct));
    occ5.push_back(RunOne("occ", 5, pct));
    chiller5.push_back(RunOne("chiller", 5, pct));
    std::fprintf(stderr, "  [fig10] %.0f%% distributed done\n", pct);
  }

  PrintHeader("% distributed txns", pcts);
  PrintRow("2PL (1 txn)", twopl1, "%8.3f");
  PrintRow("OCC (1 txn)", occ1, "%8.3f");
  PrintRow("2PL (5 txns)", twopl5, "%8.3f");
  PrintRow("OCC (5 txns)", occ5, "%8.3f");
  PrintRow("Chiller", chiller5, "%8.3f");

  std::printf("\nChiller degradation 0%% -> 100%%: %.1f%% (paper: <20%%)\n",
              100.0 * (1.0 - chiller5.back() / chiller5.front()));
}

}  // namespace
}  // namespace chiller::bench

int main() { chiller::bench::Main(); }
