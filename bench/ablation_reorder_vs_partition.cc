// Ablation for the Section 1 claim: "re-ordering operations without
// re-considering the partitioning scheme only leads to limited performance
// improvements; the challenge lies in optimizing both at the same time."
//
// Grid: {hash layout, chiller layout} x {two-region execution off, on}
// on the Instacart-like workload at 8 partitions.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

constexpr SimTime kWarmup = 3 * kMillisecond;
constexpr SimTime kMeasure = 25 * kMillisecond;
constexpr uint32_t kPartitions = 8;

double RunOne(const instacart::InstacartWorkload::Options& wopts,
              const partition::RecordPartitioner* layout, bool two_region) {
  instacart::InstacartWorkload workload(wopts);
  Env env = MakeInstacartEnv(two_region ? "chiller" : "chiller-plain",
                             kPartitions, &workload, layout,
                             /*concurrency=*/4);
  auto stats = env.driver->Run(kWarmup, kMeasure);
  return stats.Throughput() / 1000.0;
}

void Main() {
  std::printf(
      "Ablation — execution re-ordering vs contention-aware partitioning\n"
      "(Instacart-like, %u partitions; K txns/sec).\n"
      "paper claim: re-ordering alone gives limited gains; the win comes\n"
      "from optimizing order AND placement together.\n\n",
      kPartitions);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  instacart::InstacartWorkload trace_wl(wopts);
  auto layouts = BuildInstacartLayouts(&trace_wl, kPartitions,
                                       /*trace_txns=*/8000);

  const double base = RunOne(wopts, layouts.hashing.get(), false);
  const double reorder_only = RunOne(wopts, layouts.hashing.get(), true);
  const double partition_only =
      RunOne(wopts, layouts.chiller_out.partitioner.get(), false);
  const double both =
      RunOne(wopts, layouts.chiller_out.partitioner.get(), true);

  std::printf("%-44s %10.1f (1.00x)\n",
              "hash layout, plain 2PL (baseline)", base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "hash layout + two-region re-ordering", reorder_only,
              reorder_only / base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "chiller layout, plain 2PL", partition_only,
              partition_only / base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "chiller layout + two-region (full system)", both, both / base);
}

}  // namespace
}  // namespace chiller::bench

int main() { chiller::bench::Main(); }
