// Ablation for the Section 1 claim: "re-ordering operations without
// re-considering the partitioning scheme only leads to limited performance
// improvements; the challenge lies in optimizing both at the same time."
//
// Grid: {hash layout, chiller layout} x {two-region execution off, on}
// on the Instacart-like workload at 8 partitions.
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

constexpr uint32_t kPartitions = 8;

void Main(const BenchFlags& flags) {
  std::printf(
      "Ablation — execution re-ordering vs contention-aware partitioning\n"
      "(Instacart-like, %u partitions; K txns/sec).\n"
      "paper claim: re-ordering alone gives limited gains; the win comes\n"
      "from optimizing order AND placement together.\n\n",
      kPartitions);

  BenchReport report("ablation_reorder_vs_partition");
  report.SetConfig("partitions", kPartitions);
  report.SetConfig("concurrency", flags.concurrency);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  // The grid in run order: (layout, two-region?).
  struct Cell {
    const char* layout;
    bool two_region;
  };
  const std::vector<Cell> cells = {{"hash", false},
                                   {"hash", true},
                                   {"chiller", false},
                                   {"chiller", true}};

  std::vector<runner::ScenarioSpec> specs;
  for (const Cell& cell : cells) {
    runner::ScenarioSpec spec;
    spec.label = cell.layout;
    spec.workload = "instacart";
    spec.protocol = cell.two_region ? "chiller" : "chiller-plain";
    spec.nodes = kPartitions;
    spec.engines_per_node = 1;
    spec.concurrency = flags.concurrency;
    spec.seed = flags.seed;
    spec.warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
    spec.measure = static_cast<SimTime>(flags.duration_ms * kMillisecond);
    ApplyLoadModelFlags(flags, &spec);
    spec.options.Set("num_products", 20000);
    spec.options.Set("num_customers", 50000);
    spec.options.Set("tail_theta", flags.theta);
    spec.options.Set("layout", cell.layout);
    spec.options.Set("trace_txns", 8000);
    spec.options.Set("layout_seed", flags.seed + 6);
    specs.push_back(std::move(spec));
  }

  for (auto& spec : specs) {
    spec.footprint_hint = runner::EstimateFootprint(spec);
  }
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "ablation_reorder_vs_partition");
  auto results = executor.Run(specs);

  std::vector<double> tput;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "ablation_reorder: scenario %zu failed: %s\n", i,
                   results[i].status().ToString().c_str());
      std::exit(1);
    }
    const runner::ScenarioResult& r = results[i].value();
    Json params = Json::MakeObject();
    params["layout"] = r.spec.label;
    params["two_region"] = cells[i].two_region;
    report.AddRun(r.spec.protocol, std::move(params), r.stats);
    tput.push_back(r.stats.Throughput() / 1000.0);
  }

  const double base = tput[0];
  std::printf("%-44s %10.1f (1.00x)\n",
              "hash layout, plain 2PL (baseline)", base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "hash layout + two-region re-ordering", tput[1],
              tput[1] / base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "chiller layout, plain 2PL", tput[2], tput[2] / base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "chiller layout + two-region (full system)", tput[3],
              tput[3] / base);

  report.MaybeWrite(flags.emit_json,
                    flags.JsonPathFor("ablation_reorder_vs_partition"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.duration_ms = 25.0;
  defaults.theta = 0.6;  // the Instacart catalog tail skew
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "ablation_reorder_vs_partition", defaults));
}
