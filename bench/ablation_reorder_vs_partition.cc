// Ablation for the Section 1 claim: "re-ordering operations without
// re-considering the partitioning scheme only leads to limited performance
// improvements; the challenge lies in optimizing both at the same time."
//
// Grid: {hash layout, chiller layout} x {two-region execution off, on}
// on the Instacart-like workload at 8 partitions.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

constexpr uint32_t kPartitions = 8;

double RunOne(const BenchFlags& flags,
              const instacart::InstacartWorkload::Options& wopts,
              const char* layout_name,
              const partition::RecordPartitioner* layout, bool two_region,
              BenchReport* report) {
  instacart::InstacartWorkload workload(wopts);
  const std::string proto = two_region ? "chiller" : "chiller-plain";
  Env env = MakeInstacartEnv(proto, kPartitions, &workload, layout,
                             flags.concurrency, flags.seed);
  auto stats = env.driver->Run(
      static_cast<SimTime>(flags.warmup_ms * kMillisecond),
      static_cast<SimTime>(flags.duration_ms * kMillisecond));

  Json params = Json::MakeObject();
  params["layout"] = layout_name;
  params["two_region"] = two_region;
  report->AddRun(proto, std::move(params), stats);
  return stats.Throughput() / 1000.0;
}

void Main(const BenchFlags& flags) {
  std::printf(
      "Ablation — execution re-ordering vs contention-aware partitioning\n"
      "(Instacart-like, %u partitions; K txns/sec).\n"
      "paper claim: re-ordering alone gives limited gains; the win comes\n"
      "from optimizing order AND placement together.\n\n",
      kPartitions);

  BenchReport report("ablation_reorder_vs_partition");
  report.SetConfig("partitions", kPartitions);
  report.SetConfig("concurrency", flags.concurrency);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  wopts.tail_theta = flags.theta;
  instacart::InstacartWorkload trace_wl(wopts);
  auto layouts = BuildInstacartLayouts(&trace_wl, kPartitions,
                                       /*trace_txns=*/8000,
                                       /*seed=*/flags.seed + 6);

  const double base =
      RunOne(flags, wopts, "hash", layouts.hashing.get(), false, &report);
  const double reorder_only =
      RunOne(flags, wopts, "hash", layouts.hashing.get(), true, &report);
  const double partition_only =
      RunOne(flags, wopts, "chiller",
             layouts.chiller_out.partitioner.get(), false, &report);
  const double both =
      RunOne(flags, wopts, "chiller",
             layouts.chiller_out.partitioner.get(), true, &report);

  std::printf("%-44s %10.1f (1.00x)\n",
              "hash layout, plain 2PL (baseline)", base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "hash layout + two-region re-ordering", reorder_only,
              reorder_only / base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "chiller layout, plain 2PL", partition_only,
              partition_only / base);
  std::printf("%-44s %10.1f (%.2fx)\n",
              "chiller layout + two-region (full system)", both, both / base);

  report.MaybeWrite(flags.emit_json,
                    flags.JsonPathFor("ablation_reorder_vs_partition"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.duration_ms = 25.0;
  defaults.theta = 0.6;  // the Instacart catalog tail skew
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "ablation_reorder_vs_partition", defaults));
}
