#include "bench/bench_report.h"

#include <cstdio>
#include <utility>

namespace chiller::bench {

Json ResultRow(const std::string& protocol, Json params,
               const cc::RunStats& stats) {
  Histogram latency;
  for (const auto& cls : stats.classes) latency.Merge(cls.latency);

  Json row = Json::MakeObject();
  row["protocol"] = protocol;
  row["params"] = std::move(params);
  row["throughput_tps"] = stats.Throughput();
  row["abort_rate"] = stats.AbortRate();
  row["distributed_ratio"] = stats.DistributedRatio();
  row["commits"] = stats.TotalCommits();
  row["conflict_aborts"] = stats.TotalConflictAborts();
  row["attempts"] = stats.TotalAttempts();
  row["latency_p50_ns"] = latency.count() == 0 ? 0 : latency.Percentile(50);
  row["latency_p99_ns"] = latency.count() == 0 ? 0 : latency.Percentile(99);
  row["latency_mean_ns"] = latency.count() == 0 ? 0.0 : latency.Mean();

  // Open-loop accounting: emitted whenever the run was driven through an
  // admission queue — keyed off the load model, not the counters, so every
  // row of an open-loop sweep has the same schema even if a window saw no
  // arrivals — and never for closed-loop reports (every committed
  // BENCH_*.json predating the load-model API keeps its exact shape).
  if (stats.open_loop) {
    const Histogram& q = stats.queue_delay;
    row["admitted"] = stats.admitted;
    row["shed"] = stats.shed;
    row["shed_rate"] = stats.ShedRate();
    row["queue_delay_p50_ns"] = q.count() == 0 ? 0 : q.Percentile(50);
    row["queue_delay_p99_ns"] = q.count() == 0 ? 0 : q.Percentile(99);
    row["queue_delay_mean_ns"] = q.count() == 0 ? 0.0 : q.Mean();
  }

  // Live-migration abort class: only present when the bucket gate actually
  // fired in the window, so every report predating the migrate subsystem
  // (and every quiesced or migration-free run since) keeps its exact shape.
  if (stats.TotalMigrationAborts() > 0) {
    row["migration_aborts"] = stats.TotalMigrationAborts();
  }

  Json per_class = Json::MakeObject();
  for (const auto& cls : stats.classes) {
    if (cls.name.empty() && cls.attempts() == 0) continue;
    Json c = Json::MakeObject();
    c["commits"] = cls.commits;
    c["abort_rate"] = cls.AbortRate();
    per_class[cls.name.empty() ? "unnamed" : cls.name] = std::move(c);
  }
  row["classes"] = std::move(per_class);
  return row;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetConfig(const std::string& key, Json value) {
  config_[key] = std::move(value);
}

void BenchReport::Add(Json row) { results_.Append(std::move(row)); }

void BenchReport::AddRun(const std::string& protocol, Json params,
                         const cc::RunStats& stats) {
  Add(ResultRow(protocol, std::move(params), stats));
}

Json BenchReport::ToJson() const {
  Json doc = Json::MakeObject();
  doc["bench"] = name_;
  doc["config"] = config_;
  doc["results"] = results_;
  return doc;
}

Status BenchReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const std::string text = ToJson().Dump(/*indent=*/2);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != text.size() || !close_ok) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

void BenchReport::MaybeWrite(bool emit, const std::string& path) const {
  if (!emit) return;
  const Status st = WriteFile(path);
  if (st.ok()) {
    std::fprintf(stderr, "  [%s] wrote %s\n", name_.c_str(), path.c_str());
  } else {
    std::fprintf(stderr, "  [%s] JSON report failed: %s\n", name_.c_str(),
                 st.ToString().c_str());
  }
}

}  // namespace chiller::bench
